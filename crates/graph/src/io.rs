//! Plain-text edge-list serialization.
//!
//! Format: first line `n m`, then `m` lines `u v`. Lines starting with `#`
//! are comments. This is enough to move test graphs in and out of the
//! workspace; it is deliberately not a general graph interchange format.

use std::error::Error;
use std::fmt;

use crate::builder::GraphError;
use crate::graph::Graph;

/// Error raised when parsing an edge-list string.
#[derive(Debug)]
pub enum ParseGraphError {
    /// The header line `n m` was missing or malformed.
    BadHeader(String),
    /// An edge line was malformed.
    BadEdgeLine {
        /// 1-based line number in the input.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// Fewer edge lines than the header promised.
    MissingEdges {
        /// Edges promised by the header.
        expected: usize,
        /// Edges actually present.
        found: usize,
    },
    /// The edges violated simple-graph invariants.
    Graph(GraphError),
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::BadHeader(s) => write!(f, "bad header line: {s:?}"),
            ParseGraphError::BadEdgeLine { line, text } => {
                write!(f, "bad edge on line {line}: {text:?}")
            }
            ParseGraphError::MissingEdges { expected, found } => {
                write!(f, "header promised {expected} edges but found {found}")
            }
            ParseGraphError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseGraphError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseGraphError {
    fn from(e: GraphError) -> Self {
        ParseGraphError::Graph(e)
    }
}

/// Serializes a graph to the edge-list format.
///
/// # Examples
///
/// ```
/// use rsp_graph::{generators, to_edge_list_string, from_edge_list_str};
///
/// let g = generators::cycle(3);
/// let s = to_edge_list_string(&g);
/// assert_eq!(from_edge_list_str(&s).unwrap(), g);
/// ```
pub fn to_edge_list_string(g: &Graph) -> String {
    let mut out = format!("{} {}\n", g.n(), g.m());
    for (_, u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Parses a graph from the edge-list format.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input or invalid graphs.
pub fn from_edge_list_str(s: &str) -> Result<Graph, ParseGraphError> {
    let mut lines = s
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines.next().ok_or_else(|| ParseGraphError::BadHeader(String::new()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseGraphError::BadHeader(header.to_string()))?;
    let m: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseGraphError::BadHeader(header.to_string()))?;
    if parts.next().is_some() {
        return Err(ParseGraphError::BadHeader(header.to_string()));
    }
    let mut edges = Vec::with_capacity(m);
    for (line, text) in lines.by_ref().take(m) {
        let mut parts = text.split_whitespace();
        let parse = |t: Option<&str>| t.and_then(|t| t.parse::<usize>().ok());
        match (parse(parts.next()), parse(parts.next()), parts.next()) {
            (Some(u), Some(v), None) => edges.push((u, v)),
            _ => return Err(ParseGraphError::BadEdgeLine { line, text: text.to_string() }),
        }
    }
    if edges.len() < m {
        return Err(ParseGraphError::MissingEdges { expected: m, found: edges.len() });
    }
    Ok(Graph::from_edges(n, edges)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip() {
        for g in [generators::petersen(), generators::grid(3, 3), generators::star(5)] {
            let s = to_edge_list_string(&g);
            assert_eq!(from_edge_list_str(&s).unwrap(), g);
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let s = "# a comment\n\n3 2\n0 1\n# interior\n1 2\n";
        let g = from_edge_list_str(s).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn bad_header() {
        assert!(matches!(from_edge_list_str("abc"), Err(ParseGraphError::BadHeader(_))));
        assert!(matches!(from_edge_list_str(""), Err(ParseGraphError::BadHeader(_))));
        assert!(matches!(from_edge_list_str("3 1 9\n0 1"), Err(ParseGraphError::BadHeader(_))));
    }

    #[test]
    fn bad_edge_line() {
        let s = "3 2\n0 1\n1 x\n";
        assert!(matches!(from_edge_list_str(s), Err(ParseGraphError::BadEdgeLine { .. })));
    }

    #[test]
    fn missing_edges() {
        let s = "3 2\n0 1\n";
        assert!(matches!(
            from_edge_list_str(s),
            Err(ParseGraphError::MissingEdges { expected: 2, found: 1 })
        ));
    }

    #[test]
    fn invalid_graph_propagates() {
        let s = "2 1\n0 5\n";
        assert!(matches!(from_edge_list_str(s), Err(ParseGraphError::Graph(_))));
    }
}
