//! **E4 / Theorem 3 (Algorithm 1)** — subset replacement path runtime
//! scaling, in the two regimes the `O(σm) + Õ(σ²n)` bound speaks to:
//!
//! * **dense graphs** (`m = Θ(n²)`): Algorithm 1 builds `σ` trees once
//!   and solves each pair on an `O(n)`-edge union, beating the per-pair
//!   full-graph algorithm (`O(σ²m)`);
//! * **large-diameter graphs** (long-thin tori): selected paths have
//!   `Θ(n)` edges, so the naive BFS-per-fault recompute pays
//!   `Θ(σ²·n·(n+m))` and loses to both algorithms.

use rsp_graph::generators;
use rsp_replacement::{naive_subset_rp, per_pair_subset_rp, subset_replacement_paths};

use crate::reporting::{f3, timed, Table};
use crate::workloads::{dense_sweep, spread_sources, Workload};

/// Runs E4 and prints the tables.
pub fn run(quick: bool) {
    let sigma = 6;

    // Regime 1: density — Algorithm 1 vs per-pair on the full graph.
    let sizes: &[usize] = if quick { &[60, 120] } else { &[60, 120, 240, 360] };
    let mut t1 = Table::new(
        "E4a (Theorem 3): Algorithm 1 vs per-pair baseline, dense graphs, sigma = 6",
        &["graph", "n", "m", "alg1 ms", "per-pair ms", "speedup"],
    );
    for w in dense_sweep(sizes, 11) {
        let g = &w.graph;
        let sources = spread_sources(g.n(), sigma);
        let (fast, fast_ms) = timed(|| subset_replacement_paths(g, &sources, 1));
        let (pp, pp_ms) = timed(|| per_pair_subset_rp(g, &sources, 2));
        let (s, t) = (sources[0], sources[1]);
        if let (Some(a), Some(b)) = (fast.pair(s, t), pp.pair(s, t)) {
            assert_eq!(a.base_dist(), b.base_dist());
        }
        t1.row(&[
            w.name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            f3(fast_ms),
            f3(pp_ms),
            f3(pp_ms / fast_ms),
        ]);
    }
    t1.print();

    // Regime 2: diameter — Algorithm 1 vs the naive recompute on
    // long-thin tori (diameter Θ(n)).
    let ks: &[usize] = if quick { &[32, 64] } else { &[32, 64, 128, 256] };
    let mut t2 = Table::new(
        "E4b (Theorem 3): Algorithm 1 vs naive recompute, 4 x c tori, sigma = 6",
        &["graph", "n", "m", "alg1 ms", "naive ms", "speedup"],
    );
    for &k in ks {
        let w = Workload { name: format!("torus-4x{k}"), graph: generators::torus(4, k) };
        let g = &w.graph;
        let sources = spread_sources(g.n(), sigma);
        let (fast, fast_ms) = timed(|| subset_replacement_paths(g, &sources, 1));
        let (naive, naive_ms) = timed(|| naive_subset_rp(g, &sources));
        // Spot-check agreement on one pair.
        let (s, t) = (sources[0], sources[3]);
        let a = fast.pair(s, t).expect("torus connected");
        let b = naive.pair(s, t).expect("torus connected");
        assert_eq!(a.base_dist(), b.base_dist());
        for entry in a.entries() {
            assert_eq!(entry.dist, b.result().dist_after_fault(entry.edge));
        }
        t2.row(&[
            w.name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            f3(fast_ms),
            f3(naive_ms),
            f3(naive_ms / fast_ms),
        ]);
    }
    t2.print();
    println!(
        "shape check: Algorithm 1's advantage over the per-pair baseline grows\n\
         with density, and its advantage over naive recompute grows with the\n\
         diameter (path length = number of failure points).\n"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_runs_quick() {
        super::run(true);
    }
}
