//! Batched multi-fault query benchmarks: the PR 2 per-query engine (one
//! reused `SearchScratch`, one full search per `(source, fault set)`
//! query) versus the batch engine (`dijkstra_batch` / `bfs_batch`, which
//! shares the settled search prefix between fault sets agreeing on the
//! early frontier) versus the worker-pool fan-out (`dijkstra_batch_par`).
//!
//! The workload mirrors the restorability/preserver access pattern: every
//! query batch is `sources × (∅ + single faults spread across the edge
//! set)` on a tie-rich grid under Theorem 20 perturbed `u128` costs, plus
//! the unweighted BFS layer. `per_query` is the `indexed_reuse` engine of
//! `BENCH_2.json`, so the two trajectories are directly comparable.
//!
//! Append results to the repo's `BENCH_<n>.json` trajectory with:
//!
//! ```sh
//! CRITERION_JSON_PATH="$PWD/BENCH_3.json" \
//!   cargo bench -p rsp_bench --bench query_batch
//! ```

use std::ops::ControlFlow;

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::RandomGridAtw;
use rsp_graph::{
    bfs_batch, bfs_batch_par, bfs_into, dijkstra_batch, dijkstra_batch_par, generators,
    BatchScratch, FaultSet, Graph, SearchScratch, Vertex,
};

/// `∅` plus `queries` single faults spread across the edge set: most are
/// far from any given source, which is exactly the prefix-sharing regime.
fn fault_batch(g: &Graph, queries: usize) -> Vec<FaultSet> {
    std::iter::once(FaultSet::empty())
        .chain((0..queries).map(|i| FaultSet::single(i * g.m() / queries)))
        .collect()
}

fn bench_weighted(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let sources: Vec<Vertex> = (0..8).map(|i| i * g.n() / 8).collect();
    let faults = fault_batch(&g, 32);

    let mut group = c.benchmark_group("query_batch/u128_grid16x16_8x33");
    let mut single = SearchScratch::<u128>::with_capacity(g.n());
    group.bench_function("per_query", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for &s in &sources {
                for f in &faults {
                    scheme.spt_into(s, f, &mut single);
                    reached += single.reachable_count();
                }
            }
            reached
        })
    });
    let mut batch = BatchScratch::<u128>::with_capacity(g.n());
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            dijkstra_batch(
                &g,
                &sources,
                &faults,
                scheme.directed_costs(),
                &mut batch,
                |_, _, r| {
                    reached += r.reachable_count();
                    ControlFlow::Continue(())
                },
            );
            reached
        })
    });
    for workers in [2, 4] {
        group.bench_function(format!("batched_par{workers}"), |b| {
            b.iter(|| {
                dijkstra_batch_par(
                    &g,
                    &sources,
                    &faults,
                    || scheme.directed_costs(),
                    workers,
                    |_, _, r| r.reachable_count(),
                )
                .into_iter()
                .flatten()
                .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let sources: Vec<Vertex> = (0..8).map(|i| i * g.n() / 8).collect();
    let faults = fault_batch(&g, 32);

    let mut group = c.benchmark_group("query_batch/bfs_grid16x16_8x33");
    let mut single = SearchScratch::<u32>::with_capacity(g.n());
    group.bench_function("per_query", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for &s in &sources {
                for f in &faults {
                    bfs_into(&g, s, f, &mut single);
                    reached += single.reachable_count();
                }
            }
            reached
        })
    });
    let mut batch = BatchScratch::<u32>::with_capacity(g.n());
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            bfs_batch(&g, &sources, &faults, &mut batch, |_, _, r| {
                reached += r.reachable_count();
                ControlFlow::Continue(())
            });
            reached
        })
    });
    group.bench_function("batched_par4", |b| {
        b.iter(|| {
            bfs_batch_par::<u32, _, _>(&g, &sources, &faults, 4, |_, _, r| r.reachable_count())
                .into_iter()
                .flatten()
                .sum::<usize>()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_weighted, bench_bfs
}
criterion_main!(benches);
