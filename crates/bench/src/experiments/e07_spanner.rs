//! **E7 / Theorem 7 + Lemma 32** — fault-tolerant +4 additive spanner
//! sizes against `O_f(n^{1+2^{f'}/(2^{f'}+1)})`, with sampled stretch
//! verification.

use rsp_core::verify::sample_fault_sets;
use rsp_core::RandomGridAtw;
use rsp_spanner::{ft_additive_spanner, theorem33_sigma, verify_spanner_stretch};

use crate::reporting::{f3, Table};
use crate::workloads::dense_sweep;

/// Runs E7 and prints the tables.
pub fn run(quick: bool) {
    let sizes: &[usize] = if quick { &[40, 80] } else { &[40, 80, 160, 240] };
    for f in [1usize, 2] {
        let mut table = Table::new(
            &format!("E7 (Theorem 7): {f}-FT +4 additive spanner sizes"),
            &["graph", "n", "m", "sigma", "spanner edges", "bound", "edges/m"],
        );
        for w in dense_sweep(sizes, 23) {
            let g = &w.graph;
            let scheme = RandomGridAtw::theorem20(g, 29).into_scheme();
            let sigma = theorem33_sigma(g.n(), f);
            let sp = ft_additive_spanner(&scheme, sigma, f, 31);
            // Sampled stretch verification (exhaustive is O(m·n·(n+m))).
            let fault_sets = sample_fault_sets(g.m(), f, if quick { 4 } else { 10 }, 37);
            verify_spanner_stretch(g, &sp, 4, &fault_sets).expect("stretch must hold");
            // Theorem 33's bound with its parameter f' = f − 1.
            let fexp = (1u64 << (f - 1)) as f64;
            let bound = (g.n() as f64).powf(1.0 + fexp / (fexp + 1.0));
            table.row(&[
                w.name.clone(),
                g.n().to_string(),
                g.m().to_string(),
                sigma.to_string(),
                sp.edge_count().to_string(),
                f3(bound),
                f3(sp.edge_count() as f64 / g.m() as f64),
            ]);
        }
        table.print();
        println!(
            "shape check: spanner edges stay near the n^(1+2^f'/(2^f'+1)) curve\n\
             and strictly sparsify dense inputs; +4 stretch verified under faults.\n"
        );
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_runs_quick() {
        super::run(true);
    }
}
