//! Restorable shortest path tiebreaking for edge-faulty graphs.
//!
//! This crate implements the primary contribution of Bodwin & Parter,
//! *Restorable Shortest Path Tiebreaking for Edge-Faulty Graphs* (PODC
//! 2021): selecting **one** shortest path per *ordered* vertex pair so that
//! replacement paths under edge failures can always be rebuilt by
//! concatenating two selected paths (Theorem 2).
//!
//! # The construction
//!
//! An **antisymmetric tiebreaking weight (ATW) function** (Definition 18)
//! assigns each directed edge a tiny perturbation `r(u, v) = −r(v, u)`; the
//! reweighted graph `G*` has edge weights `1 + r(u, v)` and — when `r` is
//! `f`-fault tiebreaking — *unique* shortest paths in every `G* \ F`. The
//! induced replacement-path tiebreaking scheme `π(s, t | F)` is then
//! simultaneously **consistent** (Definition 14), **stable** (Definition 16)
//! and **f-restorable** (Definition 17) — Theorem 19.
//!
//! Three ATW constructions are provided, mirroring the paper:
//!
//! * [`RandomGridAtw::theorem20`] — fine uniform grid standing in for the
//!   real-valued `[−ε, ε]` sampling of Theorem 20 (exact integer arithmetic
//!   replaces the real-RAM model);
//! * [`RandomGridAtw::corollary22`] — the isolation-lemma grid of
//!   Corollary 22, with `O(f log n)` bits per weight;
//! * [`GeometricAtw`] (Theorem 23) — deterministic weights
//!   `sign(u−v)·C^{−i}/(2n)` with `O(|E|)` bits per weight, on exact
//!   [`rsp_arith::BigInt`] arithmetic.
//!
//! # What restorability buys
//!
//! [`restore_by_concatenation`] rebuilds a replacement path for any fault
//! set from the *already stored* paths — the MPLS-style recovery the paper
//! is motivated by. With an arbitrary consistent scheme (e.g.
//! [`BfsScheme`]) this fails on real instances (Figure 1 of the paper);
//! with a restorable scheme it always succeeds, which
//! [`verify::verify_restorability`] checks exhaustively.
//!
//! The impossibility half (Theorem 37: no *symmetric* scheme can be
//! 1-restorable, already on the 4-cycle) is reproduced in the [`c4`] module
//! by exhaustive enumeration of all symmetric schemes.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), the preserver
//! enumeration pipeline, and the serving layer (its "Serving layer"
//! chapter — `rsp_oracle` compiles an [`ExactScheme`] into immutable
//! snapshots served lock-free; prefer it over driving [`Rpts`] queries
//! directly when answering live fault queries).
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`Rpts`] | Definition 15: replacement-path tiebreaking scheme `π(s, t \| F)` |
//! | [`Rpts::for_each_tree`] | batched query plane for the Section 3–4 sweeps (prefix sharing + checkpointed resume via `rsp_graph::dijkstra_batch`) |
//! | [`ExactScheme`] | Theorem 19: the weight-induced consistent/stable/restorable scheme |
//! | [`RandomGridAtw::theorem20`] | Theorem 20 (real sampling → exact fine grid) |
//! | [`RandomGridAtw::corollary22`] | Corollary 22, isolation-lemma grid, `O(f log n)` bits |
//! | [`GeometricAtw`] | Theorem 23 deterministic weights, `O(\|E\|)` bits |
//! | [`restore_by_concatenation`], [`restore_single_fault`] | Theorem 2 / Definition 17 restoration; Section 1's MPLS splice |
//! | [`restoration_stats`], [`restoration_stats_par`] | experiment E1: Figure 1 quantified |
//! | [`verify`] | Definitions 13, 14, 16, 17, 18 checked instance-by-instance |
//! | [`c4`] | Theorem 37 impossibility on the 4-cycle |
//! | [`BfsScheme`] | the non-restorable baseline of Figure 1 |
//!
//! # Examples
//!
//! ```
//! use rsp_core::{RandomGridAtw, Rpts, restore_by_concatenation};
//! use rsp_graph::{generators, FaultSet};
//!
//! // Build a restorable scheme on the 4-cycle of Theorem 37.
//! let g = generators::cycle(4);
//! let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
//!
//! // Fail any edge: restoration by concatenation always succeeds.
//! for (e, _, _) in scheme.graph().edges() {
//!     for s in scheme.graph().vertices() {
//!         for t in scheme.graph().vertices() {
//!             let restored = restore_by_concatenation(&scheme, s, t, &FaultSet::single(e));
//!             assert!(restored.is_some());
//!         }
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod c4;
mod geometric_atw;
mod naive;
mod random_atw;
mod restore;
mod scheme;
pub mod verify;

pub use geometric_atw::GeometricAtw;
pub use naive::{BfsOrder, BfsScheme};
pub use random_atw::RandomGridAtw;
pub use restore::{
    restoration_stats, restoration_stats_par, restore_by_concatenation,
    restore_by_concatenation_with, restore_single_fault, restore_single_fault_with,
    RestorationStats,
};
pub use scheme::{ExactScheme, Rpts, RptsScratch};
