//! Batched multi-fault queries: shared search prefixes across fault sets.
//!
//! The paper's experiments — and any production use of Theorem 2-style
//! restoration — are loops over `sources × fault_sets` shortest-path
//! queries. Running each query from scratch repeats work: two queries from
//! the same source whose fault sets are **not touched by the early search
//! frontier** proceed identically until the first faulted edge is examined.
//! This module exploits that:
//!
//! * [`BatchScratch`] owns a *baseline* (fault-free) run per source,
//!   instrumented with the settle order and, per edge, the settle step at
//!   which the edge is first examined;
//! * for each fault set `F`, the *prefix length* `k = min_{e ∈ F}
//!   first_examined(e)` bounds how many settle steps of the baseline are
//!   provably identical in `G \ F`; the query **resumes** from that prefix
//!   (copy `k` settled vertices, replay only their frontier relaxations,
//!   continue the search) instead of starting over;
//! * fault sets the baseline never examines (`k` = the whole settle order)
//!   are answered by the baseline directly, with **zero** additional
//!   traversal — the common case for local faults far from the source.
//!
//! Results are **byte-identical** to the single-query engine
//! ([`crate::bfs_into`] / [`crate::dijkstra_into`]): same distances, costs,
//! parents, settle order, and tie detection (the property suite in
//! `tests/batch_properties.rs` asserts this exhaustively).
//!
//! The worker-pool variants [`bfs_batch_par`] / [`dijkstra_batch_par`] fan
//! sources out over `std::thread::scope` threads, one [`BatchScratch`] per
//! worker, and return per-query extracted results in deterministic
//! `sources × fault_sets` order regardless of worker count.
//!
//! # Examples
//!
//! Batch BFS over all single-edge faults, reading results per query:
//!
//! ```
//! use rsp_graph::{bfs_batch, generators, BatchScratch, FaultSet};
//!
//! let g = generators::grid(4, 4);
//! let faults: Vec<FaultSet> = (0..g.m()).map(FaultSet::single).collect();
//! let mut scratch = BatchScratch::<u32>::with_capacity(g.n());
//! let mut reachable = 0usize;
//! bfs_batch(&g, &[0, 15], &faults, &mut scratch, |_s, _f, result| {
//!     reachable += result.reachable_count();
//!     std::ops::ControlFlow::Continue(())
//! });
//! // A 4×4 grid stays connected under any single fault.
//! assert_eq!(reachable, 2 * g.m() * g.n());
//! ```
//!
//! Parallel weighted batch, extracting one cost per query:
//!
//! ```
//! use rsp_graph::{dijkstra_batch_par, generators, FaultSet};
//!
//! let g = generators::cycle(6);
//! let faults = [FaultSet::empty(), FaultSet::single(0)];
//! let costs = dijkstra_batch_par(
//!     &g,
//!     &[0, 3],
//!     &faults,
//!     || |e: usize, _u: usize, _v: usize| 10u64 + e as u64,
//!     2,
//!     |_s, _f, result| result.cost(1).copied(),
//! );
//! assert_eq!(costs.len(), 2); // one row per source
//! assert_eq!(costs[0][0], Some(10)); // 0 → 1 over edge 0
//! assert!(costs[0][1].unwrap() > 10); // edge 0 failed: the long way round
//! ```

use std::ops::ControlFlow;

use rsp_arith::PathCost;

use crate::fault::FaultSet;
use crate::graph::{EdgeId, Graph, Vertex};
use crate::pool::parallel_indexed;
use crate::scratch::{
    bfs_observed, bfs_run, dijkstra_observed, dijkstra_run, relax, EdgeCostSource, NoObserver,
    SearchObserver, SearchScratch, SETTLED,
};

/// Forwards an [`EdgeCostSource`] by mutable reference, so one cost source
/// instance can serve every query of a batch.
struct ByRef<'a, T>(&'a mut T);

impl<C: PathCost, T: EdgeCostSource<C>> EdgeCostSource<C> for ByRef<'_, T> {
    #[inline]
    fn accumulate(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex, out: &mut C) {
        self.0.accumulate(base, e, from, to, out);
    }
}

/// Records the baseline run's settle order and per-step progress.
struct Recorder<'a> {
    settle_order: &'a mut Vec<Vertex>,
    /// `ties_prefix[j]`: cumulative tie flag after `j` settle steps.
    ties_prefix: &'a mut Vec<bool>,
    /// `reach_after[j]`: vertices discovered after `j` settle steps.
    reach_after: &'a mut Vec<usize>,
}

impl SearchObserver for Recorder<'_> {
    #[inline]
    fn popped(&mut self, v: Vertex) {
        self.settle_order.push(v);
    }

    #[inline]
    fn relaxed(&mut self, reached: usize, ties: bool) {
        self.ties_prefix.push(ties);
        self.reach_after.push(reached);
    }
}

/// Reusable state for one source's multi-fault query batch.
///
/// Holds the instrumented fault-free baseline run plus a second
/// [`SearchScratch`] that faulted queries resume into. One `BatchScratch`
/// serves any number of [`bfs_batch`] / [`dijkstra_batch`] calls (and any
/// number of sources within a call — the baseline is rebuilt per source).
///
/// The cost type parameter defaults to `u32` for unweighted (BFS-only) use.
#[derive(Clone, Debug)]
pub struct BatchScratch<C = u32> {
    /// The fault-free run for the current source.
    baseline: SearchScratch<C>,
    /// Target scratch for resumed (faulted) queries.
    resume: SearchScratch<C>,
    /// Baseline settle order (BFS: dequeue order; Dijkstra: pop order).
    settle_order: Vec<Vertex>,
    /// Cumulative tie flag after each settle step; `ties_prefix[0] = false`.
    ties_prefix: Vec<bool>,
    /// Discovered-vertex count after each settle step; `reach_after[0] = 1`.
    reach_after: Vec<usize>,
    /// Per edge: the settle step at which the baseline first examines it,
    /// or `u32::MAX` if it never does.
    first_examined: Vec<u32>,
}

impl<C: PathCost> Default for BatchScratch<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: PathCost> BatchScratch<C> {
    /// An empty batch scratch; buffers grow on first use.
    pub fn new() -> Self {
        BatchScratch {
            baseline: SearchScratch::new(),
            resume: SearchScratch::new(),
            settle_order: Vec::new(),
            ties_prefix: Vec::new(),
            reach_after: Vec::new(),
            first_examined: Vec::new(),
        }
    }

    /// A batch scratch pre-sized for graphs with up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        BatchScratch {
            baseline: SearchScratch::with_capacity(n),
            resume: SearchScratch::with_capacity(n),
            settle_order: Vec::with_capacity(n),
            ties_prefix: Vec::with_capacity(n + 1),
            reach_after: Vec::with_capacity(n + 1),
            first_examined: Vec::new(),
        }
    }

    /// Resets the per-source instrumentation ahead of a baseline run.
    fn begin_source(&mut self) {
        self.settle_order.clear();
        self.ties_prefix.clear();
        self.ties_prefix.push(false);
        self.reach_after.clear();
        self.reach_after.push(1);
    }

    /// Derives `first_examined` from the recorded settle order.
    fn index_edges(&mut self, g: &Graph) {
        self.first_examined.clear();
        self.first_examined.resize(g.m(), u32::MAX);
        for (step, &u) in self.settle_order.iter().enumerate() {
            for (_, e) in g.neighbors(u) {
                if self.first_examined[e] == u32::MAX {
                    self.first_examined[e] = step as u32;
                }
            }
        }
    }

    /// Number of baseline settle steps provably unaffected by `faults`:
    /// the earliest step at which any faulted edge is examined (or the
    /// full settle count if none ever is).
    fn prefix_len(&self, faults: &FaultSet) -> usize {
        let mut k = self.settle_order.len();
        for e in faults.iter() {
            if let Some(&step) = self.first_examined.get(e) {
                k = k.min(step as usize);
            }
        }
        k
    }

    /// Resumes a BFS query against `faults` from the `k`-step baseline
    /// prefix: the first `reach_after[k]` discovered vertices are copied
    /// verbatim, the still-queued ones re-enter the frontier, and the
    /// traversal continues with `faults` active.
    fn resume_bfs(&mut self, g: &Graph, faults: &FaultSet, k: usize) {
        let base = &self.baseline;
        let out = &mut self.resume;
        let reach = self.reach_after[k];
        out.begin(g.n(), base.source, false);
        let epoch = out.epoch;
        for &v in &base.touched[..reach] {
            out.stamp[v] = epoch;
            out.hops[v] = base.hops[v];
            out.parent[v] = base.parent[v];
            out.touched.push(v);
        }
        // BFS settles in discovery order, so after k dequeues the frontier
        // is exactly the discovered-but-not-dequeued span of the prefix.
        for &v in &base.touched[k..reach] {
            out.queue.push_back(v);
        }
        bfs_run(g, faults, out, &mut NoObserver);
    }

    /// Resumes a Dijkstra query against `faults` from the `k`-step
    /// baseline prefix: the `k` settled vertices are copied verbatim,
    /// their relaxations toward *open* vertices are replayed in original
    /// order (rebuilding the heap frontier), and the search continues with
    /// `faults` active.
    fn resume_dijkstra<F: EdgeCostSource<C>>(
        &mut self,
        g: &Graph,
        faults: &FaultSet,
        mut costs: F,
        k: usize,
    ) {
        if k == 0 {
            // A faulted edge is incident to the source: nothing to reuse.
            dijkstra_observed(
                g,
                self.baseline.source,
                faults,
                costs,
                &mut self.resume,
                &mut NoObserver,
            );
            return;
        }
        let base = &self.baseline;
        let out = &mut self.resume;
        out.begin(g.n(), base.source, true);
        out.ties = self.ties_prefix[k];
        let epoch = out.epoch;
        for &v in &self.settle_order[..k] {
            out.stamp[v] = epoch;
            out.key[v].clone_from(&base.key[v]);
            out.hops[v] = base.hops[v];
            out.parent[v] = base.parent[v];
            out.heap_pos[v] = SETTLED;
            out.touched.push(v);
        }
        // Replay the prefix's relaxations toward open vertices, in the
        // original order, to rebuild tentative keys and the heap. Edges
        // between two prefix vertices are fully resolved (any tie they
        // produced is in `ties_prefix[k]`) and are skipped. No faulted
        // edge is examined here: each has `first_examined ≥ k`, so neither
        // endpoint settled before step `k`.
        let SearchScratch { stamp, key, parent, hops, heap, heap_pos, touched, cand, ties, .. } =
            out;
        for &u in &self.settle_order[..k] {
            for (v, e) in g.neighbors(u) {
                if stamp[v] == epoch && heap_pos[v] == SETTLED {
                    continue;
                }
                debug_assert!(!faults.contains(e), "faulted edge inside shared prefix");
                costs.accumulate(&key[u], e, u, v, cand);
                relax(
                    u, v, e, epoch, cand, stamp, key, parent, hops, heap, heap_pos, touched, ties,
                );
            }
        }
        dijkstra_run(g, faults, costs, out, &mut NoObserver);
    }
}

/// Runs BFS for every query in `sources × fault_sets`, sharing the settled
/// search prefix between fault sets that agree on the early frontier.
///
/// `visitor` is called once per query, in source-major order
/// (`(0, 0), (0, 1), …, (1, 0), …`), with the source index, fault-set
/// index, and the scratch holding that query's complete result. Results
/// are byte-identical to running [`crate::bfs_into`] per query; the view
/// is only valid for the duration of the callback. Returning
/// [`ControlFlow::Break`] stops the batch immediately (remaining queries
/// are never computed) — searches and early-exiting sweeps use this.
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn bfs_batch<C, V>(
    g: &Graph,
    sources: &[Vertex],
    fault_sets: &[FaultSet],
    scratch: &mut BatchScratch<C>,
    mut visitor: V,
) where
    C: PathCost,
    V: FnMut(usize, usize, &SearchScratch<C>) -> ControlFlow<()>,
{
    for (si, &s) in sources.iter().enumerate() {
        scratch.begin_source();
        let BatchScratch { baseline, settle_order, ties_prefix, reach_after, .. } = scratch;
        let mut rec = Recorder { settle_order, ties_prefix, reach_after };
        bfs_observed(g, s, &FaultSet::empty(), baseline, &mut rec);
        scratch.index_edges(g);
        for (fi, faults) in fault_sets.iter().enumerate() {
            let k = scratch.prefix_len(faults);
            let flow = if k >= scratch.settle_order.len() {
                // No faulted edge is ever examined: the baseline answers.
                visitor(si, fi, &scratch.baseline)
            } else {
                scratch.resume_bfs(g, faults, k);
                visitor(si, fi, &scratch.resume)
            };
            if flow.is_break() {
                return;
            }
        }
    }
}

/// Runs exact-cost Dijkstra for every query in `sources × fault_sets`,
/// sharing the settled search prefix between fault sets that agree on the
/// early frontier.
///
/// `visitor` is called once per query, in source-major order, with the
/// source index, fault-set index, and the scratch holding that query's
/// complete result (costs, hops, parents, tie flag). Results are
/// byte-identical to running [`crate::dijkstra_into`] per query; the view
/// is only valid for the duration of the callback. Returning
/// [`ControlFlow::Break`] stops the batch immediately (remaining queries
/// are never computed).
///
/// `costs` must be a pure function of its arguments (the same requirement
/// every repeated-query caller already relies on); it is consulted both for
/// the baseline run and for each resumed query.
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn dijkstra_batch<C, F, V>(
    g: &Graph,
    sources: &[Vertex],
    fault_sets: &[FaultSet],
    mut costs: F,
    scratch: &mut BatchScratch<C>,
    mut visitor: V,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
    V: FnMut(usize, usize, &SearchScratch<C>) -> ControlFlow<()>,
{
    for (si, &s) in sources.iter().enumerate() {
        scratch.begin_source();
        let BatchScratch { baseline, settle_order, ties_prefix, reach_after, .. } = scratch;
        let mut rec = Recorder { settle_order, ties_prefix, reach_after };
        dijkstra_observed(g, s, &FaultSet::empty(), ByRef(&mut costs), baseline, &mut rec);
        scratch.index_edges(g);
        for (fi, faults) in fault_sets.iter().enumerate() {
            let k = scratch.prefix_len(faults);
            let flow = if k >= scratch.settle_order.len() {
                visitor(si, fi, &scratch.baseline)
            } else {
                scratch.resume_dijkstra(g, faults, ByRef(&mut costs), k);
                visitor(si, fi, &scratch.resume)
            };
            if flow.is_break() {
                return;
            }
        }
    }
}

/// [`bfs_batch`] with sources fanned out over a worker pool.
///
/// Each worker owns one [`BatchScratch`]; `map` extracts a per-query result
/// from the borrowed scratch view. Returns one row per source, each row
/// holding one extracted value per fault set — identical content in
/// identical order for every worker count (including 1, which runs inline
/// on the calling thread).
pub fn bfs_batch_par<C, M, R>(
    g: &Graph,
    sources: &[Vertex],
    fault_sets: &[FaultSet],
    workers: usize,
    map: M,
) -> Vec<Vec<R>>
where
    C: PathCost,
    M: Fn(usize, usize, &SearchScratch<C>) -> R + Sync,
    R: Send,
{
    parallel_indexed(
        sources.len(),
        workers,
        |_| BatchScratch::<C>::with_capacity(g.n()),
        |scratch, i| {
            let mut row = Vec::with_capacity(fault_sets.len());
            bfs_batch(g, &sources[i..=i], fault_sets, scratch, |_, fi, result| {
                row.push(map(i, fi, result));
                ControlFlow::Continue(())
            });
            row
        },
    )
}

/// [`dijkstra_batch`] with sources fanned out over a worker pool.
///
/// `make_costs` builds one cost source per source queried (workers cannot
/// share one `&mut` cost source); `map` extracts a per-query result from
/// the borrowed scratch view. Returns one row per source, each row holding
/// one extracted value per fault set — identical content in identical
/// order for every worker count (including 1, which runs inline on the
/// calling thread).
pub fn dijkstra_batch_par<C, MF, F, M, R>(
    g: &Graph,
    sources: &[Vertex],
    fault_sets: &[FaultSet],
    make_costs: MF,
    workers: usize,
    map: M,
) -> Vec<Vec<R>>
where
    C: PathCost,
    MF: Fn() -> F + Sync,
    F: EdgeCostSource<C>,
    M: Fn(usize, usize, &SearchScratch<C>) -> R + Sync,
    R: Send,
{
    parallel_indexed(
        sources.len(),
        workers,
        |_| BatchScratch::<C>::with_capacity(g.n()),
        |scratch, i| {
            let mut row = Vec::with_capacity(fault_sets.len());
            dijkstra_batch(
                g,
                &sources[i..=i],
                fault_sets,
                make_costs(),
                scratch,
                |_, fi, result| {
                    row.push(map(i, fi, result));
                    ControlFlow::Continue(())
                },
            );
            row
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::scratch::{bfs_into, dijkstra_into, DirectedCosts};

    /// All single faults plus the empty set plus some doubles, in an order
    /// that interleaves near-source and far-from-source faults.
    fn mixed_fault_sets(g: &Graph) -> Vec<FaultSet> {
        let mut fs = vec![FaultSet::empty()];
        fs.extend((0..g.m()).rev().map(FaultSet::single));
        for e in 0..g.m().saturating_sub(1) {
            fs.push(FaultSet::from_edges([e, g.m() - 1 - e / 2]));
        }
        fs
    }

    fn assert_scratches_equal<C: PathCost>(
        g: &Graph,
        batch: &SearchScratch<C>,
        single: &SearchScratch<C>,
        ctx: &str,
    ) {
        for v in g.vertices() {
            assert_eq!(batch.cost(v), single.cost(v), "{ctx}: cost({v})");
            assert_eq!(batch.hops(v), single.hops(v), "{ctx}: hops({v})");
            assert_eq!(batch.parent(v), single.parent(v), "{ctx}: parent({v})");
        }
        assert_eq!(batch.ties_detected(), single.ties_detected(), "{ctx}: ties");
        assert_eq!(batch.reachable_count(), single.reachable_count(), "{ctx}: reached");
    }

    #[test]
    fn bfs_batch_matches_single_queries() {
        for g in [generators::grid(4, 5), generators::petersen(), generators::path_graph(9)] {
            let fault_sets = mixed_fault_sets(&g);
            let sources: Vec<Vertex> = vec![0, g.n() / 2, g.n() - 1];
            let mut batch = BatchScratch::<u32>::new();
            let mut single = SearchScratch::<u32>::new();
            bfs_batch(&g, &sources, &fault_sets, &mut batch, |si, fi, result| {
                bfs_into(&g, sources[si], &fault_sets[fi], &mut single);
                assert_scratches_equal(&g, result, &single, &format!("bfs s{si} f{fi}"));
                ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn dijkstra_batch_matches_single_queries() {
        let g = generators::grid(4, 4);
        let fault_sets = mixed_fault_sets(&g);
        let sources: Vec<Vertex> = vec![0, 5, 15];
        let cost = |e: EdgeId, u: Vertex, v: Vertex| 1_000u64 + (e as u64 % 7) + u64::from(u < v);
        let mut batch = BatchScratch::<u64>::new();
        let mut single = SearchScratch::<u64>::new();
        dijkstra_batch(&g, &sources, &fault_sets, cost, &mut batch, |si, fi, result| {
            dijkstra_into(&g, sources[si], &fault_sets[fi], cost, &mut single);
            assert_scratches_equal(&g, result, &single, &format!("dij s{si} f{fi}"));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn dijkstra_batch_detects_ties_like_single_queries() {
        // Uniform costs on a tie-rich grid: both engines must flag ties
        // identically for every fault set.
        let g = generators::grid(3, 3);
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u64>::new();
        let mut single = SearchScratch::<u64>::new();
        dijkstra_batch(
            &g,
            &[0, 4],
            &fault_sets,
            |_, _, _| 10u64,
            &mut batch,
            |si, fi, result| {
                dijkstra_into(&g, [0, 4][si], &fault_sets[fi], |_, _, _| 10u64, &mut single);
                assert_eq!(result.ties_detected(), single.ties_detected(), "s{si} f{fi}");
                assert!(result.ties_detected(), "uniform grid costs tie everywhere");
                ControlFlow::Continue(())
            },
        );
    }

    #[test]
    fn source_incident_fault_resumes_from_scratch() {
        // Every edge at vertex 0 is examined at settle step 0, forcing the
        // k = 0 path.
        let g = generators::star(6);
        let fault_sets: Vec<FaultSet> = (0..g.m()).map(FaultSet::single).collect();
        let mut batch = BatchScratch::<u64>::new();
        let mut single = SearchScratch::<u64>::new();
        dijkstra_batch(
            &g,
            &[0],
            &fault_sets,
            |e, _, _| 5u64 + e as u64,
            &mut batch,
            |_, fi, r| {
                dijkstra_into(&g, 0, &fault_sets[fi], |e, _, _| 5u64 + e as u64, &mut single);
                assert_scratches_equal(&g, r, &single, &format!("star f{fi}"));
                assert_eq!(r.cost(fi + 1), None, "cut leaf is unreachable");
                ControlFlow::Continue(())
            },
        );
    }

    #[test]
    fn disconnecting_faults_are_exact() {
        let g = generators::path_graph(8);
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u32>::new();
        let mut single = SearchScratch::<u32>::new();
        bfs_batch(&g, &[0, 3, 7], &fault_sets, &mut batch, |si, fi, result| {
            bfs_into(&g, [0, 3, 7][si], &fault_sets[fi], &mut single);
            assert_scratches_equal(&g, result, &single, &format!("path s{si} f{fi}"));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn directed_costs_batch_matches() {
        let g = generators::grid(4, 3);
        let fwd: Vec<u128> = (0..g.m()).map(|e| 10_000 + e as u128).collect();
        let bwd: Vec<u128> = fwd.iter().map(|f| 20_000 - f).collect();
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u128>::new();
        let mut single = SearchScratch::<u128>::new();
        let sources: Vec<Vertex> = g.vertices().collect();
        dijkstra_batch(
            &g,
            &sources,
            &fault_sets,
            DirectedCosts::new(&fwd, &bwd),
            &mut batch,
            |si, fi, result| {
                dijkstra_into(
                    &g,
                    sources[si],
                    &fault_sets[fi],
                    DirectedCosts::new(&fwd, &bwd),
                    &mut single,
                );
                assert_scratches_equal(&g, result, &single, &format!("dc s{si} f{fi}"));
                ControlFlow::Continue(())
            },
        );
    }

    #[test]
    fn parallel_matches_sequential_for_all_worker_counts() {
        let g = generators::grid(4, 4);
        let fault_sets = mixed_fault_sets(&g);
        let sources: Vec<Vertex> = g.vertices().collect();
        let cost = |e: EdgeId, _: Vertex, _: Vertex| 100u64 + e as u64;
        let baseline = dijkstra_batch_par(
            &g,
            &sources,
            &fault_sets,
            || cost,
            1,
            |_, _, r| (r.cost(15).copied(), r.hops(15), r.ties_detected()),
        );
        for workers in [2, 8] {
            let par = dijkstra_batch_par(
                &g,
                &sources,
                &fault_sets,
                || cost,
                workers,
                |_, _, r| (r.cost(15).copied(), r.hops(15), r.ties_detected()),
            );
            assert_eq!(par, baseline, "workers = {workers}");
        }
        let bfs_base =
            bfs_batch_par::<u32, _, _>(&g, &sources, &fault_sets, 1, |_, _, r| r.reachable_count());
        let bfs_par =
            bfs_batch_par::<u32, _, _>(&g, &sources, &fault_sets, 8, |_, _, r| r.reachable_count());
        assert_eq!(bfs_par, bfs_base);
    }

    #[test]
    fn batch_scratch_survives_graph_switches() {
        let mut batch = BatchScratch::<u32>::new();
        for g in [generators::grid(5, 5), generators::cycle(4), generators::complete(7)] {
            let fault_sets = mixed_fault_sets(&g);
            let mut single = SearchScratch::<u32>::new();
            bfs_batch(&g, &[0], &fault_sets, &mut batch, |_, fi, result| {
                bfs_into(&g, 0, &fault_sets[fi], &mut single);
                assert_scratches_equal(&g, result, &single, &format!("switch f{fi}"));
                ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn break_stops_the_batch() {
        let g = generators::grid(3, 3);
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u32>::new();
        let mut seen = 0usize;
        bfs_batch(&g, &[0, 4], &fault_sets, &mut batch, |si, fi, _| {
            seen += 1;
            if (si, fi) == (0, 2) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 3, "queries after the break must never run");
    }

    #[test]
    fn empty_inputs_are_fine() {
        let g = generators::cycle(4);
        let mut batch = BatchScratch::<u32>::new();
        let mut calls = 0;
        let mut count = |_: usize, _: usize, _: &SearchScratch<u32>| {
            calls += 1;
            ControlFlow::Continue(())
        };
        bfs_batch(&g, &[], &[FaultSet::empty()], &mut batch, &mut count);
        bfs_batch(&g, &[0], &[], &mut batch, &mut count);
        assert_eq!(calls, 0);
        let out = bfs_batch_par::<u32, _, _>(&g, &[], &[], 4, |_, _, _| ());
        assert!(out.is_empty());
    }
}
