//! Exact-cost Dijkstra, generic over [`PathCost`].
//!
//! The tiebreaking constructions of the paper replace each unit edge weight
//! with `1 + r(u, v)` where `r` is a tiny antisymmetric perturbation, then
//! rely on shortest paths in the reweighted directed graph `G*` being
//! *unique*. Uniqueness is a statement about exact arithmetic, so this
//! Dijkstra is generic over the exact cost type: scaled `u128` integers for
//! the randomized schemes, [`rsp_arith::BigInt`] for the deterministic
//! geometric scheme.

use rsp_arith::PathCost;

use crate::fault::FaultSet;
use crate::graph::{EdgeId, Graph, Vertex};
use crate::scratch::{dijkstra_into, SearchScratch};
use crate::spt::WeightedSpt;

/// Runs Dijkstra from `source` in `g \ faults` with per-direction edge costs
/// supplied by `edge_cost(edge id, from, to)`.
///
/// Costs must be non-negative (guaranteed by the tiebreaking constructions,
/// whose perturbations satisfy `|r| < 1/(2n)` after scaling). The returned
/// tree records, per vertex: the exact minimum cost, the hop count of the
/// minimum-cost path, and the parent pointer; it also records whether any
/// equal-cost tie was observed (see [`WeightedSpt::ties_detected`]).
///
/// The asymmetry of the paper's weight functions is expressed through the
/// `(from, to)` arguments: `edge_cost(e, u, v)` and `edge_cost(e, v, u)`
/// generally differ (they average to the unit weight).
///
/// This is the allocate-once convenience wrapper around the scratch-based
/// engine ([`crate::dijkstra_into`]): it builds one fresh
/// [`crate::SearchScratch`], runs the indexed decrease-key search, and
/// materializes an owned tree. Loops issuing many queries should hold a
/// scratch and call [`crate::dijkstra_into`] directly.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
///
/// # Examples
///
/// ```
/// use rsp_graph::{dijkstra, generators, FaultSet};
///
/// // Uniform cost 1 per edge: plain BFS distances.
/// let g = generators::cycle(6);
/// let spt = dijkstra(&g, 0, &FaultSet::empty(), |_, _, _| 1u64);
/// assert_eq!(spt.cost(3), Some(&3));
/// assert!(spt.ties_detected()); // two equal ways around the cycle
/// ```
pub fn dijkstra<C, F>(g: &Graph, source: Vertex, faults: &FaultSet, edge_cost: F) -> WeightedSpt<C>
where
    C: PathCost,
    F: FnMut(EdgeId, Vertex, Vertex) -> C,
{
    let mut scratch = SearchScratch::with_capacity(g.n());
    dijkstra_into(g, source, faults, edge_cost, &mut scratch);
    scratch.to_weighted_spt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::generators;

    #[test]
    fn unit_costs_match_bfs() {
        let g = generators::grid(4, 5);
        let faults = FaultSet::empty();
        let spt = dijkstra(&g, 0, &faults, |_, _, _| 1u64);
        let tree = bfs(&g, 0, &faults);
        for v in g.vertices() {
            assert_eq!(spt.cost(v).copied(), tree.dist(v).map(u64::from));
            assert_eq!(spt.hops(v), tree.dist(v));
        }
    }

    #[test]
    fn respects_faults() {
        let g = generators::cycle(5);
        let e = g.edge_between(0, 4).unwrap();
        let spt = dijkstra(&g, 0, &FaultSet::single(e), |_, _, _| 1u64);
        assert_eq!(spt.cost(4), Some(&4));
    }

    #[test]
    fn unreachable_is_none() {
        let g = generators::path_graph(4);
        let e = g.edge_between(1, 2).unwrap();
        let spt = dijkstra(&g, 3, &FaultSet::single(e), |_, _, _| 1u64);
        assert!(spt.cost(0).is_none());
        assert!(spt.path_to(0).is_none());
        assert_eq!(spt.reachable_count(), 2);
    }

    #[test]
    fn asymmetric_costs_pick_cheap_direction() {
        // Square 0-1-2-3-0. Going 0→1→2 costs 10+10, going 0→3→2 costs
        // 12+12; make the 0→1 direction expensive so the other way wins.
        let g = generators::cycle(4);
        let e01 = g.edge_between(0, 1).unwrap();
        let spt =
            dijkstra(
                &g,
                0,
                &FaultSet::empty(),
                |e, from, _to| {
                    if e == e01 && from == 0 {
                        100u64
                    } else {
                        10u64
                    }
                },
            );
        assert_eq!(spt.path_to(2).unwrap().vertices(), &[0, 3, 2]);
        assert_eq!(spt.cost(2), Some(&20));
    }

    #[test]
    fn tie_detection_positive_and_negative() {
        // Even cycle: two equal-cost routes to the antipode → tie.
        let g = generators::cycle(4);
        let spt = dijkstra(&g, 0, &FaultSet::empty(), |_, _, _| 7u64);
        assert!(spt.ties_detected());

        // Perturb one direction slightly: tie disappears.
        let e01 = g.edge_between(0, 1).unwrap();
        let spt = dijkstra(&g, 0, &FaultSet::empty(), |e, from, _| {
            if e == e01 && from == 0 {
                7_000_001u64
            } else {
                7_000_000u64
            }
        });
        assert!(!spt.ties_detected());
        assert_eq!(spt.path_to(2).unwrap().vertices(), &[0, 3, 2]);
    }

    #[test]
    fn bigint_costs_work() {
        use rsp_arith::BigInt;
        let g = generators::path_graph(4);
        let spt = dijkstra(&g, 0, &FaultSet::empty(), |_, _, _| BigInt::pow2(100));
        assert_eq!(spt.cost(3), Some(&(BigInt::pow2(100) * 3u64)));
        assert_eq!(spt.hops(3), Some(3));
    }

    #[test]
    fn hops_track_minimum_cost_path() {
        // Costs where the min-cost path is NOT the min-hop path: a direct
        // edge with huge cost vs a two-hop detour with small cost.
        let g = crate::Graph::from_edges(3, [(0, 2), (0, 1), (1, 2)]).unwrap();
        let direct = g.edge_between(0, 2).unwrap();
        let spt =
            dijkstra(&g, 0, &FaultSet::empty(), |e, _, _| if e == direct { 100u64 } else { 1u64 });
        assert_eq!(spt.hops(2), Some(2));
        assert_eq!(spt.cost(2), Some(&2));
    }
}
