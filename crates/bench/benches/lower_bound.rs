//! E6 timing: the Theorem 27 lower-bound family, bad scheme vs
//! perturbation on `G*_1(V, E, W)`.

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_preserver::lower_bound::{build_lower_bound_graph, run_bad_scheme, run_perturbed_scheme};

fn bench_lower_bound(c: &mut Criterion) {
    c.bench_function("lower_bound/build_g1_d16", |b| {
        b.iter(|| build_lower_bound_graph(1, 16, 256))
    });

    let lb = build_lower_bound_graph(1, 16, 256);
    c.bench_function("lower_bound/bad_scheme_d16", |b| b.iter(|| run_bad_scheme(&lb)));
    c.bench_function("lower_bound/perturbed_d16", |b| b.iter(|| run_perturbed_scheme(&lb, 9)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lower_bound
}
criterion_main!(benches);
