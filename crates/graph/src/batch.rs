//! Batched multi-fault queries: shared search prefixes across fault sets.
//!
//! The paper's experiments — and any production use of Theorem 2-style
//! restoration — are loops over `sources × fault_sets` shortest-path
//! queries. Running each query from scratch repeats work: two queries from
//! the same source whose fault sets are **not touched by the early search
//! frontier** proceed identically until the first faulted edge is examined.
//! This module exploits that:
//!
//! * [`BatchScratch`] owns a *baseline* (fault-free) run per source,
//!   instrumented with the settle order and, per edge, the settle step at
//!   which the edge is first examined;
//! * for each fault set `F`, the *prefix length* `k = min_{e ∈ F}
//!   first_examined(e)` bounds how many settle steps of the baseline are
//!   provably identical in `G \ F`; the query **resumes** from that prefix
//!   instead of starting over;
//! * the weighted baseline is additionally **checkpointed** at a few
//!   geometric settle depths (`n/8`, `n/4`, `n/2`): the open-frontier
//!   state — tentative keys and the active heap — is snapshotted mid-run.
//!   A resume without a checkpoint must rebuild the step-`k` frontier by
//!   replaying every prefix relaxation (`O(prefix edges)`); with the
//!   deepest checkpoint at depth `d ≤ k`, the frontier starts from the
//!   snapshot and only the `d..k` suffix is replayed — `O(frontier +
//!   suffix edges)`. [`CheckpointMode`] and a clone-cost guard
//!   (heavyweight costs on small graphs skip snapshots entirely) keep the
//!   capture overhead below what it saves;
//! * fault sets the baseline never examines (`k` = the whole settle order)
//!   are answered by the baseline directly, with **zero** additional
//!   traversal — the common case for local faults far from the source;
//! * [`BatchStats`] counts how each query was answered (baseline /
//!   checkpoint / replay / full search) and how many relaxations the
//!   replay path re-executed, so prefix-sharing efficacy is measurable.
//!
//! Results are **byte-identical** to the single-query engine
//! ([`crate::bfs_into`] / [`crate::dijkstra_into`]): same distances, costs,
//! parents, settle order, and tie detection (the property suite in
//! `tests/batch_properties.rs` asserts this exhaustively).
//!
//! The worker-pool variants [`bfs_batch_par`] / [`dijkstra_batch_par`] fan
//! sources out over `std::thread::scope` threads, one [`BatchScratch`] per
//! worker, and return per-query extracted results in deterministic
//! `sources × fault_sets` order regardless of worker count.
//!
//! # Examples
//!
//! Batch BFS over all single-edge faults, reading results per query:
//!
//! ```
//! use rsp_graph::{bfs_batch, generators, BatchScratch, FaultSet};
//!
//! let g = generators::grid(4, 4);
//! let faults: Vec<FaultSet> = (0..g.m()).map(FaultSet::single).collect();
//! let mut scratch = BatchScratch::<u32>::with_capacity(g.n());
//! let mut reachable = 0usize;
//! bfs_batch(&g, &[0, 15], &faults, &mut scratch, |_s, _f, result| {
//!     reachable += result.reachable_count();
//!     std::ops::ControlFlow::Continue(())
//! });
//! // A 4×4 grid stays connected under any single fault.
//! assert_eq!(reachable, 2 * g.m() * g.n());
//! ```
//!
//! Parallel weighted batch, extracting one cost per query:
//!
//! ```
//! use rsp_graph::{dijkstra_batch_par, generators, FaultSet};
//!
//! let g = generators::cycle(6);
//! let faults = [FaultSet::empty(), FaultSet::single(0)];
//! let costs = dijkstra_batch_par(
//!     &g,
//!     &[0, 3],
//!     &faults,
//!     || |e: usize, _u: usize, _v: usize| 10u64 + e as u64,
//!     2,
//!     |_s, _f, result| result.cost(1).copied(),
//! );
//! assert_eq!(costs.len(), 2); // one row per source
//! assert_eq!(costs[0][0], Some(10)); // 0 → 1 over edge 0
//! assert!(costs[0][1].unwrap() > 10); // edge 0 failed: the long way round
//! ```

use std::cmp::Reverse;
use std::fmt;
use std::ops::ControlFlow;

use rsp_arith::{HeapKind, PathCost};

use crate::fault::FaultSet;
use crate::graph::{EdgeId, Graph, Vertex};
use crate::pool::parallel_indexed;
use crate::scratch::{
    bfs_observed, bfs_run, dijkstra_observed, dijkstra_run, dijkstra_seed, relax, relax_inline,
    sift_up, EdgeCostSource, NoObserver, SearchObserver, SearchScratch, OPEN, SETTLED,
};

/// Checkpoints shallower than this many settle steps are not worth the
/// snapshot: the replay resume already handles tiny prefixes in-cache.
const MIN_CHECKPOINT_DEPTH: usize = 8;

/// Under [`CheckpointMode::Auto`], graphs smaller than this skip
/// checkpointing when the cost type's clone allocates
/// ([`HeapKind::Indexed`] policy): on micro-graphs the per-vertex cost
/// clones of a snapshot exceed the replay work they would save.
const HEAVY_SNAPSHOT_MIN_N: usize = 512;

/// Forwards an [`EdgeCostSource`] by mutable reference, so one cost source
/// instance can serve every query of a batch.
struct ByRef<'a, T>(&'a mut T);

impl<C: PathCost, T: EdgeCostSource<C>> EdgeCostSource<C> for ByRef<'_, T> {
    #[inline]
    fn accumulate(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex, out: &mut C) {
        self.0.accumulate(base, e, from, to, out);
    }

    #[inline]
    fn compute(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex) -> C {
        self.0.compute(base, e, from, to)
    }
}

/// Records the baseline run's settle order and per-step progress.
struct Recorder<'a> {
    settle_order: &'a mut Vec<u32>,
    /// `ties_prefix[j]`: cumulative tie flag after `j` settle steps.
    ties_prefix: &'a mut Vec<bool>,
    /// `reach_after[j]`: vertices discovered after `j` settle steps.
    reach_after: &'a mut Vec<usize>,
}

impl SearchObserver for Recorder<'_> {
    #[inline]
    fn popped(&mut self, v: Vertex) {
        self.settle_order.push(v as u32);
    }

    #[inline]
    fn relaxed(&mut self, reached: usize, ties: bool) {
        self.ties_prefix.push(ties);
        self.reach_after.push(reached);
    }
}

/// When the weighted batch engine snapshots baseline search state for
/// checkpointed resume.
///
/// The default, [`CheckpointMode::Auto`], checkpoints whenever the
/// snapshot is cheap relative to the replay it replaces: always for
/// register-copy costs ([`HeapKind::InlineKey`] policy), and only on
/// graphs of at least `512` vertices for allocating costs
/// ([`HeapKind::Indexed`], i.e. [`rsp_arith::BigInt`]) — on micro-graphs
/// the per-vertex cost clones of a snapshot cost more than they save.
/// `Always` / `Never` override the guard (the property suite uses both to
/// pin checkpointed and checkpoint-free resume against each other).
///
/// # Examples
///
/// Results never depend on the mode — only the resume route (visible in
/// [`BatchStats`]) does:
///
/// ```
/// use std::ops::ControlFlow;
/// use rsp_graph::{dijkstra_batch, generators, BatchScratch, CheckpointMode, FaultSet};
///
/// let g = generators::grid(8, 8);
/// let faults: Vec<FaultSet> = (0..g.m()).map(FaultSet::single).collect();
/// let cost = |e: usize, _: usize, _: usize| 100u64 + e as u64;
/// let mut costs = Vec::new();
/// for mode in [CheckpointMode::Always, CheckpointMode::Never] {
///     let mut scratch = BatchScratch::<u64>::new().with_checkpoint_mode(mode);
///     let mut row = Vec::new();
///     dijkstra_batch(&g, &[0], &faults, cost, &mut scratch, |_, _, r| {
///         row.push(r.cost(63).copied());
///         ControlFlow::Continue(())
///     });
///     if mode == CheckpointMode::Always {
///         assert!(scratch.stats().checkpoints_captured > 0);
///     } else {
///         assert_eq!(scratch.stats().checkpoints_captured, 0);
///     }
///     costs.push(row);
/// }
/// assert_eq!(costs[0], costs[1], "modes are byte-identical");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Checkpoint unless the cost type's clone is heavyweight and the
    /// graph is small (the guard described above).
    #[default]
    Auto,
    /// Checkpoint whenever a depth is reachable, guard ignored.
    Always,
    /// Never checkpoint; every resume uses the relaxation-replay path.
    Never,
}

/// Counters describing how a batch's queries were answered; read them via
/// [`BatchScratch::stats`] after [`bfs_batch`] / [`dijkstra_batch`].
///
/// Counts accumulate across batch calls on the same scratch (so a bench
/// can total over iterations); [`BatchScratch::reset_stats`] zeroes them.
/// The worker-pool variants own their scratches internally and do not
/// expose stats.
///
/// # Examples
///
/// Every query is answered by exactly one route, so the four route
/// counters always partition `queries`:
///
/// ```
/// use std::ops::ControlFlow;
/// use rsp_graph::{bfs_batch, generators, BatchScratch, FaultSet};
///
/// let g = generators::grid(5, 5);
/// let faults: Vec<FaultSet> = (0..g.m()).map(FaultSet::single).collect();
/// let mut scratch = BatchScratch::<u32>::new();
/// bfs_batch(&g, &[0, 24], &faults, &mut scratch, |_, _, _| ControlFlow::Continue(()));
/// let stats = scratch.stats();
/// assert_eq!(stats.queries, 2 * faults.len());
/// assert_eq!(
///     stats.queries,
///     stats.baseline_answered + stats.checkpoint_resumed + stats.prefix_resumed
///         + stats.full_searches,
/// );
/// assert_eq!(stats.reused(), stats.queries - stats.full_searches);
/// println!("{stats}"); // one-line human-readable summary
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Total queries answered.
    pub queries: usize,
    /// Queries whose fault set the baseline never examined: answered by
    /// the baseline run outright, zero additional traversal.
    pub baseline_answered: usize,
    /// Queries resumed by restoring a mid-run checkpoint and continuing
    /// the search (weighted only).
    pub checkpoint_resumed: usize,
    /// Queries resumed by copying the settled prefix and replaying its
    /// frontier relaxations (no checkpoint at or before the divergence
    /// step, or checkpointing disabled).
    pub prefix_resumed: usize,
    /// Queries with a fault incident to the source's first settle step:
    /// nothing to reuse, full search from scratch.
    pub full_searches: usize,
    /// Edge relaxations re-executed by the replay path (the work
    /// checkpointed resume exists to avoid).
    pub replayed_relaxations: usize,
    /// Checkpoints captured during baseline runs.
    pub checkpoints_captured: usize,
}

impl BatchStats {
    /// Queries that reused at least the full baseline or a prefix of it
    /// (everything except full searches).
    pub fn reused(&self) -> usize {
        self.queries - self.full_searches
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries: {} baseline, {} checkpoint-resumed, {} replay-resumed, \
             {} full; {} relaxations replayed, {} checkpoints captured",
            self.queries,
            self.baseline_answered,
            self.checkpoint_resumed,
            self.prefix_resumed,
            self.full_searches,
            self.replayed_relaxations,
            self.checkpoints_captured,
        )
    }
}

/// A snapshot of the baseline's *open frontier* after `depth` settle
/// steps: everything a resume needs to rebuild the search state at a later
/// step without replaying the relaxations of the first `depth` settles
/// (settled state is copied from the baseline's final arrays instead).
#[derive(Clone, Debug)]
struct Checkpoint<C> {
    /// Settle steps completed when the snapshot was taken.
    depth: usize,
    /// `(vertex, tentative key, parent, hops)` per discovered-but-open
    /// vertex, in discovery order (stored-width `u32` ids, matching the
    /// scratch arrays they snapshot).
    open: Vec<(u32, C, (u32, u32), u32)>,
    /// Indexed-heap snapshot (vertex ids in heap order); unused under the
    /// inline-key engine.
    heap: Vec<u32>,
    /// Inline-key heap snapshot, stale entries included; unused under the
    /// indexed engine.
    lazy: Vec<(C, u32)>,
}

/// Reusable state for one source's multi-fault query batch.
///
/// Holds the instrumented fault-free baseline run plus a second
/// [`SearchScratch`] that faulted queries resume into. One `BatchScratch`
/// serves any number of [`bfs_batch`] / [`dijkstra_batch`] calls (and any
/// number of sources within a call — the baseline is rebuilt per source).
///
/// The cost type parameter defaults to `u32` for unweighted (BFS-only) use.
#[derive(Clone, Debug)]
pub struct BatchScratch<C = u32> {
    /// The fault-free run for the current source.
    baseline: SearchScratch<C>,
    /// Target scratch for resumed (faulted) queries.
    resume: SearchScratch<C>,
    /// Baseline settle order (BFS: dequeue order; Dijkstra: pop order),
    /// stored-width ids.
    settle_order: Vec<u32>,
    /// Cumulative tie flag after each settle step; `ties_prefix[0] = false`.
    ties_prefix: Vec<bool>,
    /// Discovered-vertex count after each settle step; `reach_after[0] = 1`.
    reach_after: Vec<usize>,
    /// Per edge: the settle step at which the baseline first examines it,
    /// or `u32::MAX` if it never does.
    first_examined: Vec<u32>,
    /// Mid-run baseline snapshots for the current source, ascending by
    /// depth (weighted baselines only).
    checkpoints: Vec<Checkpoint<C>>,
    /// Checkpoint capture policy.
    mode: CheckpointMode,
    /// How queries have been answered so far (cumulative).
    stats: BatchStats,
}

impl<C: PathCost> Default for BatchScratch<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: PathCost> BatchScratch<C> {
    /// An empty batch scratch; buffers grow on first use.
    pub fn new() -> Self {
        BatchScratch {
            baseline: SearchScratch::new(),
            resume: SearchScratch::new(),
            settle_order: Vec::new(),
            ties_prefix: Vec::new(),
            reach_after: Vec::new(),
            first_examined: Vec::new(),
            checkpoints: Vec::new(),
            mode: CheckpointMode::default(),
            stats: BatchStats::default(),
        }
    }

    /// A batch scratch pre-sized for graphs with up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        BatchScratch {
            baseline: SearchScratch::with_capacity(n),
            resume: SearchScratch::with_capacity(n),
            settle_order: Vec::with_capacity(n),
            ties_prefix: Vec::with_capacity(n + 1),
            reach_after: Vec::with_capacity(n + 1),
            first_examined: Vec::new(),
            checkpoints: Vec::new(),
            mode: CheckpointMode::default(),
            stats: BatchStats::default(),
        }
    }

    /// Sets the checkpoint capture policy (see [`CheckpointMode`]);
    /// builder-style companion of [`BatchScratch::set_checkpoint_mode`].
    pub fn with_checkpoint_mode(mut self, mode: CheckpointMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the checkpoint capture policy for subsequent batch calls.
    pub fn set_checkpoint_mode(&mut self, mode: CheckpointMode) {
        self.mode = mode;
    }

    /// Forces the heap engine for both the baseline and resumed searches,
    /// or restores the automatic choice with `None` (see
    /// [`SearchScratch::set_heap_kind`]). The two inner scratches always
    /// share one choice: a checkpoint snapshots whichever heap the
    /// baseline ran on, and the resume must restore onto the same engine.
    pub fn set_heap_kind(&mut self, kind: Option<HeapKind>) {
        self.baseline.set_heap_kind(kind);
        self.resume.set_heap_kind(kind);
    }

    /// Builder-style companion of [`BatchScratch::set_heap_kind`].
    pub fn with_heap_kind(mut self, kind: HeapKind) -> Self {
        self.set_heap_kind(Some(kind));
        self
    }

    /// The current checkpoint capture policy.
    pub fn checkpoint_mode(&self) -> CheckpointMode {
        self.mode
    }

    /// How queries have been answered so far (cumulative across batch
    /// calls on this scratch).
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Zeroes the [`BatchScratch::stats`] counters.
    pub fn reset_stats(&mut self) {
        self.stats = BatchStats::default();
    }

    /// Whether the current mode and guard allow checkpointing on `g`.
    fn checkpoints_enabled(&self, g: &Graph) -> bool {
        match self.mode {
            CheckpointMode::Always => true,
            CheckpointMode::Never => false,
            // Auto: a snapshot clones one cost per discovered vertex, so
            // skip it when clones allocate (indexed policy) and the graph
            // is too small for the saved replay to pay for them.
            CheckpointMode::Auto => C::HEAP == HeapKind::InlineKey || g.n() >= HEAVY_SNAPSHOT_MIN_N,
        }
    }

    /// The settle depths worth checkpointing for an `n`-vertex graph:
    /// geometric (`n/8`, `n/4`, `n/2`) plus a late `3n/4` snapshot,
    /// ascending, deduplicated, and deep enough to beat the replay path.
    ///
    /// The `3n/4` depth was added when the dense `G(n, m ≈ n^1.5)`
    /// `query_batch` family landed (PR 5): replay costs `O(suffix
    /// edges)`, so on a degree-24 graph the `n/2..k` suffixes of
    /// deep-diverging queries dominated the resume — a late snapshot
    /// halves the worst suffix for one more `O(frontier)` capture.
    /// Degree-4 grids measure the same within noise (suffixes there are
    /// cheap either way).
    fn checkpoint_depths(n: usize) -> impl Iterator<Item = usize> {
        let mut prev = 0usize;
        [n / 8, n / 4, n / 2, 3 * n / 4].into_iter().filter(move |&d| {
            let take = d >= MIN_CHECKPOINT_DEPTH && d > prev;
            if take {
                prev = d;
            }
            take
        })
    }

    /// Resets the per-source instrumentation ahead of a baseline run.
    fn begin_source(&mut self) {
        self.settle_order.clear();
        self.ties_prefix.clear();
        self.ties_prefix.push(false);
        self.reach_after.clear();
        self.reach_after.push(1);
        self.checkpoints.clear();
    }

    /// Snapshots the baseline's current search state as a checkpoint at
    /// `depth` settle steps.
    fn capture_checkpoint(&mut self, depth: usize) {
        let base = &self.baseline;
        self.checkpoints.push(Checkpoint {
            depth,
            // Only the open frontier: a resume copies settled state from
            // the baseline's final arrays, never from a snapshot, so
            // settled records would be dead weight (`O(frontier)` clones
            // per checkpoint, not `O(discovered)`).
            open: base
                .touched
                .iter()
                .filter(|&&v| base.heap_pos[v as usize] != SETTLED)
                .map(|&v| {
                    let vi = v as usize;
                    (v, base.key[vi].clone(), base.parent[vi], base.hops[vi])
                })
                .collect(),
            heap: base.heap.clone(),
            // Live entries only (the one whose cost matches the current
            // tentative key, per open vertex): stale entries would be
            // skipped at pop anyway, and cloning them would make the
            // snapshot O(relaxations so far) instead of O(frontier).
            lazy: base
                .lazy
                .iter()
                .filter(|Reverse((c, v))| c == &base.key[*v as usize])
                .map(|Reverse(entry)| entry.clone())
                .collect(),
        });
        self.stats.checkpoints_captured += 1;
    }

    /// Derives `first_examined` from the recorded settle order.
    fn index_edges(&mut self, g: &Graph) {
        self.first_examined.clear();
        self.first_examined.resize(g.m(), u32::MAX);
        for (step, &u) in self.settle_order.iter().enumerate() {
            for (_, e) in g.neighbors(u as usize) {
                if self.first_examined[e] == u32::MAX {
                    self.first_examined[e] = step as u32;
                }
            }
        }
    }

    /// Number of baseline settle steps provably unaffected by `faults`:
    /// the earliest step at which any faulted edge is examined (or the
    /// full settle count if none ever is).
    fn prefix_len(&self, faults: &FaultSet) -> usize {
        let mut k = self.settle_order.len();
        for e in faults.iter() {
            if let Some(&step) = self.first_examined.get(e) {
                k = k.min(step as usize);
            }
        }
        k
    }

    /// Resumes a BFS query against `faults` from the `k`-step baseline
    /// prefix: the first `reach_after[k]` discovered vertices are copied
    /// verbatim, the still-queued ones re-enter the frontier, and the
    /// traversal continues with `faults` active.
    fn resume_bfs(&mut self, g: &Graph, faults: &FaultSet, k: usize) {
        let base = &self.baseline;
        let out = &mut self.resume;
        let reach = self.reach_after[k];
        out.begin(g.n(), base.source, false);
        let epoch = out.epoch;
        for &v in &base.touched[..reach] {
            let vi = v as usize;
            out.stamp[vi] = epoch;
            out.hops[vi] = base.hops[vi];
            out.parent[vi] = base.parent[vi];
            out.touched.push(v);
        }
        // BFS settles in discovery order, so after k dequeues the frontier
        // is exactly the discovered-but-not-dequeued span of the prefix.
        for &v in &base.touched[k..reach] {
            out.queue.push_back(v);
        }
        bfs_run(g, faults, out, &mut NoObserver);
    }

    /// Resumes a Dijkstra query against `faults` that diverges from the
    /// baseline at settle step `k`, picking the cheapest sound route:
    ///
    /// 1. `k = 0` (fault incident to the source's first step): full
    ///    search, nothing to reuse;
    /// 2. otherwise the `k` settled vertices are copied verbatim, and the
    ///    heap frontier at step `k` is rebuilt by replaying the prefix's
    ///    relaxations toward *open* vertices in original settle order.
    ///    With a checkpoint at depth `d ≤ k`, the frontier *starts from
    ///    the snapshot* — open tentative state and heap as of step `d` —
    ///    and only the `d..k` suffix is replayed: `O(prefix copy +
    ///    frontier + suffix edges)` instead of `O(prefix copy + prefix
    ///    edges)`. Without one, the replay covers `0..k`.
    ///
    /// Either way the search then continues with `faults` active.
    fn resume_dijkstra<F: EdgeCostSource<C>>(
        &mut self,
        g: &Graph,
        faults: &FaultSet,
        mut costs: F,
        k: usize,
    ) {
        if k == 0 {
            // A faulted edge is incident to the source: nothing to reuse.
            self.stats.full_searches += 1;
            dijkstra_observed(
                g,
                self.baseline.source,
                faults,
                costs,
                &mut self.resume,
                &mut NoObserver,
            );
            return;
        }
        let ci = self.checkpoints.iter().rposition(|cp| cp.depth <= k);
        match ci {
            Some(_) => self.stats.checkpoint_resumed += 1,
            None => self.stats.prefix_resumed += 1,
        }
        let base = &self.baseline;
        let out = &mut self.resume;
        out.begin(g.n(), base.source, true);
        out.ties = self.ties_prefix[k];
        let epoch = out.epoch;
        for &v in &self.settle_order[..k] {
            let vi = v as usize;
            out.stamp[vi] = epoch;
            out.key[vi].clone_from(&base.key[vi]);
            out.hops[vi] = base.hops[vi];
            out.parent[vi] = base.parent[vi];
            out.heap_pos[vi] = SETTLED;
            out.touched.push(v);
        }
        // Seed the open frontier from the deepest usable checkpoint: its
        // records restore every vertex that was discovered-but-open at
        // depth `d` and is still open at step `k` (records of vertices
        // settled by `k` are recognizable by their fresh stamp and
        // skipped — the settled copy above is already their final state).
        // Checkpoint heap entries of settled vertices are dropped the
        // same way; the rebuilt heap realizes the same `(key, id)` order,
        // which is all pop order depends on.
        let mut replay_from = 0usize;
        if let Some(ci) = ci {
            let cp = &self.checkpoints[ci];
            replay_from = cp.depth;
            for &(v, ref key, parent, hops) in &cp.open {
                let vi = v as usize;
                if out.stamp[vi] == epoch {
                    continue;
                }
                out.stamp[vi] = epoch;
                out.key[vi].clone_from(key);
                out.parent[vi] = parent;
                out.hops[vi] = hops;
                out.heap_pos[vi] = OPEN;
                out.touched.push(v);
            }
            match out.active {
                HeapKind::Indexed => {
                    for &v in &cp.heap {
                        let vi = v as usize;
                        if out.heap_pos[vi] != OPEN {
                            continue;
                        }
                        let end = out.heap.len();
                        out.heap_pos[vi] = end as u32;
                        out.heap.push(v);
                        sift_up(&mut out.heap, &mut out.heap_pos, &out.key, end);
                    }
                }
                HeapKind::InlineKey => {
                    out.lazy.extend(
                        cp.lazy
                            .iter()
                            .filter(|entry| {
                                let vi = entry.1 as usize;
                                out.stamp[vi] == epoch && out.heap_pos[vi] != SETTLED
                            })
                            .map(|entry| Reverse(entry.clone())),
                    );
                }
            }
        }
        // Replay the `replay_from..k` relaxations toward open vertices,
        // in the original order, completing tentative keys and the heap.
        // Edges between two settled-prefix vertices are fully resolved
        // (any tie they produced is in `ties_prefix[k]`) and are skipped
        // — re-relaxing them against *final* keys would flag spurious
        // ties on prefix tree edges. No faulted edge is examined here:
        // each has `first_examined ≥ k`, so neither endpoint settled
        // before step `k`.
        let SearchScratch {
            stamp,
            key,
            parent,
            hops,
            heap,
            heap_pos,
            lazy,
            touched,
            cand,
            ties,
            active,
            ..
        } = out;
        let mut replayed = 0usize;
        for &u in &self.settle_order[replay_from..k] {
            let u = u as usize;
            for (v, e) in g.neighbors(u) {
                if stamp[v] == epoch && heap_pos[v] == SETTLED {
                    continue;
                }
                debug_assert!(!faults.contains(e), "faulted edge inside shared prefix");
                replayed += 1;
                match *active {
                    HeapKind::InlineKey => {
                        let cand = costs.compute(&key[u], e, u, v);
                        relax_inline(
                            u, v, e, epoch, cand, stamp, key, parent, hops, lazy, heap_pos,
                            touched, ties,
                        );
                    }
                    HeapKind::Indexed => {
                        costs.accumulate(&key[u], e, u, v, cand);
                        relax(
                            u, v, e, epoch, cand, stamp, key, parent, hops, heap, heap_pos,
                            touched, ties,
                        );
                    }
                }
            }
        }
        self.stats.replayed_relaxations += replayed;
        dijkstra_run(g, faults, costs, out, &mut NoObserver, usize::MAX);
    }
}

/// Runs BFS for every query in `sources × fault_sets`, sharing the settled
/// search prefix between fault sets that agree on the early frontier.
///
/// `visitor` is called once per query, in source-major order
/// (`(0, 0), (0, 1), …, (1, 0), …`), with the source index, fault-set
/// index, and the scratch holding that query's complete result. Results
/// are byte-identical to running [`crate::bfs_into`] per query; the view
/// is only valid for the duration of the callback. Returning
/// [`ControlFlow::Break`] stops the batch immediately (remaining queries
/// are never computed) — searches and early-exiting sweeps use this.
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn bfs_batch<C, V>(
    g: &Graph,
    sources: &[Vertex],
    fault_sets: &[FaultSet],
    scratch: &mut BatchScratch<C>,
    mut visitor: V,
) where
    C: PathCost,
    V: FnMut(usize, usize, &SearchScratch<C>) -> ControlFlow<()>,
{
    for (si, &s) in sources.iter().enumerate() {
        scratch.begin_source();
        let BatchScratch { baseline, settle_order, ties_prefix, reach_after, .. } = scratch;
        let mut rec = Recorder { settle_order, ties_prefix, reach_after };
        bfs_observed(g, s, &FaultSet::empty(), baseline, &mut rec);
        scratch.index_edges(g);
        for (fi, faults) in fault_sets.iter().enumerate() {
            let k = scratch.prefix_len(faults);
            scratch.stats.queries += 1;
            let flow = if k >= scratch.settle_order.len() {
                // No faulted edge is ever examined: the baseline answers.
                scratch.stats.baseline_answered += 1;
                visitor(si, fi, &scratch.baseline)
            } else {
                // BFS resume is already `O(prefix + frontier)` with zero
                // replay (the frontier is a contiguous span of the
                // discovery order), so it never checkpoints.
                if k == 0 {
                    scratch.stats.full_searches += 1;
                } else {
                    scratch.stats.prefix_resumed += 1;
                }
                scratch.resume_bfs(g, faults, k);
                visitor(si, fi, &scratch.resume)
            };
            if flow.is_break() {
                return;
            }
        }
    }
}

/// Runs exact-cost Dijkstra for every query in `sources × fault_sets`,
/// sharing the settled search prefix between fault sets that agree on the
/// early frontier.
///
/// `visitor` is called once per query, in source-major order, with the
/// source index, fault-set index, and the scratch holding that query's
/// complete result (costs, hops, parents, tie flag). Results are
/// byte-identical to running [`crate::dijkstra_into`] per query; the view
/// is only valid for the duration of the callback. Returning
/// [`ControlFlow::Break`] stops the batch immediately (remaining queries
/// are never computed).
///
/// `costs` must be a pure function of its arguments (the same requirement
/// every repeated-query caller already relies on); it is consulted both for
/// the baseline run and for each resumed query.
///
/// # Examples
///
/// One source, every single-edge fault, reading one target's exact cost
/// per query:
///
/// ```
/// use std::ops::ControlFlow;
/// use rsp_graph::{dijkstra_batch, generators, BatchScratch, FaultSet};
///
/// let g = generators::cycle(6);
/// let faults: Vec<FaultSet> = (0..g.m()).map(FaultSet::single).collect();
/// let mut scratch = BatchScratch::<u64>::with_capacity(g.n());
/// let mut costs_to_3 = Vec::new();
/// dijkstra_batch(
///     &g,
///     &[0],
///     &faults,
///     |_e: usize, _u: usize, _v: usize| 10u64,
///     &mut scratch,
///     |_si, _fi, result| {
///         costs_to_3.push(result.cost(3).copied());
///         ControlFlow::Continue(())
///     },
/// );
/// // The cycle stays connected under any one fault: 0 → 3 always costs
/// // 3 hops one way or 3 the other (uniform weight 10).
/// assert_eq!(costs_to_3, vec![Some(30); g.m()]);
/// ```
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn dijkstra_batch<C, F, V>(
    g: &Graph,
    sources: &[Vertex],
    fault_sets: &[FaultSet],
    mut costs: F,
    scratch: &mut BatchScratch<C>,
    mut visitor: V,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
    V: FnMut(usize, usize, &SearchScratch<C>) -> ControlFlow<()>,
{
    let no_faults = FaultSet::empty();
    for (si, &s) in sources.iter().enumerate() {
        scratch.begin_source();
        // Run the instrumented baseline in segments, pausing at each
        // checkpoint depth to snapshot the paused search state. The final
        // segment drains the heap; if the graph is exhausted before a
        // depth is reached, the remaining depths are simply not captured.
        dijkstra_seed(g, s, &mut scratch.baseline);
        if scratch.checkpoints_enabled(g) {
            for d in BatchScratch::<C>::checkpoint_depths(g.n()) {
                let settled = scratch.settle_order.len();
                let BatchScratch { baseline, settle_order, ties_prefix, reach_after, .. } = scratch;
                let mut rec = Recorder { settle_order, ties_prefix, reach_after };
                dijkstra_run(g, &no_faults, ByRef(&mut costs), baseline, &mut rec, d - settled);
                if scratch.settle_order.len() < d {
                    break;
                }
                scratch.capture_checkpoint(d);
            }
        }
        {
            let BatchScratch { baseline, settle_order, ties_prefix, reach_after, .. } = scratch;
            let mut rec = Recorder { settle_order, ties_prefix, reach_after };
            dijkstra_run(g, &no_faults, ByRef(&mut costs), baseline, &mut rec, usize::MAX);
        }
        scratch.index_edges(g);
        for (fi, faults) in fault_sets.iter().enumerate() {
            let k = scratch.prefix_len(faults);
            scratch.stats.queries += 1;
            let flow = if k >= scratch.settle_order.len() {
                scratch.stats.baseline_answered += 1;
                visitor(si, fi, &scratch.baseline)
            } else {
                scratch.resume_dijkstra(g, faults, ByRef(&mut costs), k);
                visitor(si, fi, &scratch.resume)
            };
            if flow.is_break() {
                return;
            }
        }
    }
}

/// [`bfs_batch`] with sources fanned out over a worker pool.
///
/// Each worker owns one [`BatchScratch`]; `map` extracts a per-query result
/// from the borrowed scratch view. Returns one row per source, each row
/// holding one extracted value per fault set — identical content in
/// identical order for every worker count (including 1, which runs inline
/// on the calling thread).
pub fn bfs_batch_par<C, M, R>(
    g: &Graph,
    sources: &[Vertex],
    fault_sets: &[FaultSet],
    workers: usize,
    map: M,
) -> Vec<Vec<R>>
where
    C: PathCost,
    M: Fn(usize, usize, &SearchScratch<C>) -> R + Sync,
    R: Send,
{
    parallel_indexed(
        sources.len(),
        workers,
        |_| BatchScratch::<C>::with_capacity(g.n()),
        |scratch, i| {
            let mut row = Vec::with_capacity(fault_sets.len());
            bfs_batch(g, &sources[i..=i], fault_sets, scratch, |_, fi, result| {
                row.push(map(i, fi, result));
                ControlFlow::Continue(())
            });
            row
        },
    )
}

/// [`dijkstra_batch`] with sources fanned out over a worker pool.
///
/// `make_costs` builds one cost source per source queried (workers cannot
/// share one `&mut` cost source); `map` extracts a per-query result from
/// the borrowed scratch view. Returns one row per source, each row holding
/// one extracted value per fault set — identical content in identical
/// order for every worker count (including 1, which runs inline on the
/// calling thread).
pub fn dijkstra_batch_par<C, MF, F, M, R>(
    g: &Graph,
    sources: &[Vertex],
    fault_sets: &[FaultSet],
    make_costs: MF,
    workers: usize,
    map: M,
) -> Vec<Vec<R>>
where
    C: PathCost,
    MF: Fn() -> F + Sync,
    F: EdgeCostSource<C>,
    M: Fn(usize, usize, &SearchScratch<C>) -> R + Sync,
    R: Send,
{
    parallel_indexed(
        sources.len(),
        workers,
        |_| BatchScratch::<C>::with_capacity(g.n()),
        |scratch, i| {
            let mut row = Vec::with_capacity(fault_sets.len());
            dijkstra_batch(
                g,
                &sources[i..=i],
                fault_sets,
                make_costs(),
                scratch,
                |_, fi, result| {
                    row.push(map(i, fi, result));
                    ControlFlow::Continue(())
                },
            );
            row
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::scratch::{bfs_into, dijkstra_into, DirectedCosts};

    /// All single faults plus the empty set plus some doubles, in an order
    /// that interleaves near-source and far-from-source faults.
    fn mixed_fault_sets(g: &Graph) -> Vec<FaultSet> {
        let mut fs = vec![FaultSet::empty()];
        fs.extend((0..g.m()).rev().map(FaultSet::single));
        for e in 0..g.m().saturating_sub(1) {
            fs.push(FaultSet::from_edges([e, g.m() - 1 - e / 2]));
        }
        fs
    }

    fn assert_scratches_equal<C: PathCost>(
        g: &Graph,
        batch: &SearchScratch<C>,
        single: &SearchScratch<C>,
        ctx: &str,
    ) {
        for v in g.vertices() {
            assert_eq!(batch.cost(v), single.cost(v), "{ctx}: cost({v})");
            assert_eq!(batch.hops(v), single.hops(v), "{ctx}: hops({v})");
            assert_eq!(batch.parent(v), single.parent(v), "{ctx}: parent({v})");
        }
        assert_eq!(batch.ties_detected(), single.ties_detected(), "{ctx}: ties");
        assert_eq!(batch.reachable_count(), single.reachable_count(), "{ctx}: reached");
    }

    #[test]
    fn bfs_batch_matches_single_queries() {
        for g in [generators::grid(4, 5), generators::petersen(), generators::path_graph(9)] {
            let fault_sets = mixed_fault_sets(&g);
            let sources: Vec<Vertex> = vec![0, g.n() / 2, g.n() - 1];
            let mut batch = BatchScratch::<u32>::new();
            let mut single = SearchScratch::<u32>::new();
            bfs_batch(&g, &sources, &fault_sets, &mut batch, |si, fi, result| {
                bfs_into(&g, sources[si], &fault_sets[fi], &mut single);
                assert_scratches_equal(&g, result, &single, &format!("bfs s{si} f{fi}"));
                ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn dijkstra_batch_matches_single_queries() {
        let g = generators::grid(4, 4);
        let fault_sets = mixed_fault_sets(&g);
        let sources: Vec<Vertex> = vec![0, 5, 15];
        let cost = |e: EdgeId, u: Vertex, v: Vertex| 1_000u64 + (e as u64 % 7) + u64::from(u < v);
        let mut batch = BatchScratch::<u64>::new();
        let mut single = SearchScratch::<u64>::new();
        dijkstra_batch(&g, &sources, &fault_sets, cost, &mut batch, |si, fi, result| {
            dijkstra_into(&g, sources[si], &fault_sets[fi], cost, &mut single);
            assert_scratches_equal(&g, result, &single, &format!("dij s{si} f{fi}"));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn dijkstra_batch_detects_ties_like_single_queries() {
        // Uniform costs on a tie-rich grid: both engines must flag ties
        // identically for every fault set.
        let g = generators::grid(3, 3);
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u64>::new();
        let mut single = SearchScratch::<u64>::new();
        dijkstra_batch(
            &g,
            &[0, 4],
            &fault_sets,
            |_, _, _| 10u64,
            &mut batch,
            |si, fi, result| {
                dijkstra_into(&g, [0, 4][si], &fault_sets[fi], |_, _, _| 10u64, &mut single);
                assert_eq!(result.ties_detected(), single.ties_detected(), "s{si} f{fi}");
                assert!(result.ties_detected(), "uniform grid costs tie everywhere");
                ControlFlow::Continue(())
            },
        );
    }

    #[test]
    fn source_incident_fault_resumes_from_scratch() {
        // Every edge at vertex 0 is examined at settle step 0, forcing the
        // k = 0 path.
        let g = generators::star(6);
        let fault_sets: Vec<FaultSet> = (0..g.m()).map(FaultSet::single).collect();
        let mut batch = BatchScratch::<u64>::new();
        let mut single = SearchScratch::<u64>::new();
        dijkstra_batch(
            &g,
            &[0],
            &fault_sets,
            |e, _, _| 5u64 + e as u64,
            &mut batch,
            |_, fi, r| {
                dijkstra_into(&g, 0, &fault_sets[fi], |e, _, _| 5u64 + e as u64, &mut single);
                assert_scratches_equal(&g, r, &single, &format!("star f{fi}"));
                assert_eq!(r.cost(fi + 1), None, "cut leaf is unreachable");
                ControlFlow::Continue(())
            },
        );
    }

    #[test]
    fn disconnecting_faults_are_exact() {
        let g = generators::path_graph(8);
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u32>::new();
        let mut single = SearchScratch::<u32>::new();
        bfs_batch(&g, &[0, 3, 7], &fault_sets, &mut batch, |si, fi, result| {
            bfs_into(&g, [0, 3, 7][si], &fault_sets[fi], &mut single);
            assert_scratches_equal(&g, result, &single, &format!("path s{si} f{fi}"));
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn directed_costs_batch_matches() {
        let g = generators::grid(4, 3);
        let fwd: Vec<u128> = (0..g.m()).map(|e| 10_000 + e as u128).collect();
        let bwd: Vec<u128> = fwd.iter().map(|f| 20_000 - f).collect();
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u128>::new();
        let mut single = SearchScratch::<u128>::new();
        let sources: Vec<Vertex> = g.vertices().collect();
        dijkstra_batch(
            &g,
            &sources,
            &fault_sets,
            DirectedCosts::new(&fwd, &bwd),
            &mut batch,
            |si, fi, result| {
                dijkstra_into(
                    &g,
                    sources[si],
                    &fault_sets[fi],
                    DirectedCosts::new(&fwd, &bwd),
                    &mut single,
                );
                assert_scratches_equal(&g, result, &single, &format!("dc s{si} f{fi}"));
                ControlFlow::Continue(())
            },
        );
    }

    #[test]
    fn parallel_matches_sequential_for_all_worker_counts() {
        let g = generators::grid(4, 4);
        let fault_sets = mixed_fault_sets(&g);
        let sources: Vec<Vertex> = g.vertices().collect();
        let cost = |e: EdgeId, _: Vertex, _: Vertex| 100u64 + e as u64;
        let baseline = dijkstra_batch_par(
            &g,
            &sources,
            &fault_sets,
            || cost,
            1,
            |_, _, r| (r.cost(15).copied(), r.hops(15), r.ties_detected()),
        );
        for workers in [2, 8] {
            let par = dijkstra_batch_par(
                &g,
                &sources,
                &fault_sets,
                || cost,
                workers,
                |_, _, r| (r.cost(15).copied(), r.hops(15), r.ties_detected()),
            );
            assert_eq!(par, baseline, "workers = {workers}");
        }
        let bfs_base =
            bfs_batch_par::<u32, _, _>(&g, &sources, &fault_sets, 1, |_, _, r| r.reachable_count());
        let bfs_par =
            bfs_batch_par::<u32, _, _>(&g, &sources, &fault_sets, 8, |_, _, r| r.reachable_count());
        assert_eq!(bfs_par, bfs_base);
    }

    #[test]
    fn batch_scratch_survives_graph_switches() {
        let mut batch = BatchScratch::<u32>::new();
        for g in [generators::grid(5, 5), generators::cycle(4), generators::complete(7)] {
            let fault_sets = mixed_fault_sets(&g);
            let mut single = SearchScratch::<u32>::new();
            bfs_batch(&g, &[0], &fault_sets, &mut batch, |_, fi, result| {
                bfs_into(&g, 0, &fault_sets[fi], &mut single);
                assert_scratches_equal(&g, result, &single, &format!("switch f{fi}"));
                ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn break_stops_the_batch() {
        let g = generators::grid(3, 3);
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u32>::new();
        let mut seen = 0usize;
        bfs_batch(&g, &[0, 4], &fault_sets, &mut batch, |si, fi, _| {
            seen += 1;
            if (si, fi) == (0, 2) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 3, "queries after the break must never run");
    }

    #[test]
    fn checkpoint_modes_agree_with_each_other_and_single_queries() {
        // 16×4 grid (n = 64): depths 8, 16, 32 all capture. Every mode
        // must produce the single-query engine's exact results.
        let g = generators::grid(16, 4);
        let fault_sets = mixed_fault_sets(&g);
        let sources: Vec<Vertex> = vec![0, 31, 63];
        let cost = |e: EdgeId, u: Vertex, v: Vertex| 500u64 + (e as u64 % 5) + u64::from(u < v);
        let mut single = SearchScratch::<u64>::new();
        for heap in [HeapKind::InlineKey, HeapKind::Indexed] {
            for mode in [CheckpointMode::Auto, CheckpointMode::Always, CheckpointMode::Never] {
                let mut batch =
                    BatchScratch::<u64>::new().with_checkpoint_mode(mode).with_heap_kind(heap);
                dijkstra_batch(&g, &sources, &fault_sets, cost, &mut batch, |si, fi, result| {
                    dijkstra_into(&g, sources[si], &fault_sets[fi], cost, &mut single);
                    let ctx = format!("{heap:?}/{mode:?} s{si} f{fi}");
                    assert_scratches_equal(&g, result, &single, &ctx);
                    ControlFlow::Continue(())
                });
                let stats = batch.stats();
                assert_eq!(stats.queries, sources.len() * fault_sets.len());
                assert_eq!(
                    stats.queries,
                    stats.baseline_answered
                        + stats.checkpoint_resumed
                        + stats.prefix_resumed
                        + stats.full_searches,
                    "every query is counted exactly once ({heap:?}/{mode:?})"
                );
                match mode {
                    CheckpointMode::Never => {
                        assert_eq!(stats.checkpoints_captured, 0);
                        assert_eq!(stats.checkpoint_resumed, 0);
                    }
                    // u64 is an inline-eligible cost: Auto checkpoints
                    // like Always regardless of the active heap engine.
                    // n = 64: depths 8, 16, 32, 48 all capture.
                    _ => {
                        assert_eq!(stats.checkpoints_captured, 4 * sources.len());
                        assert!(stats.checkpoint_resumed > 0, "deep faults restore checkpoints");
                    }
                }
            }
        }
    }

    #[test]
    fn heavy_clone_guard_skips_checkpoints_on_small_graphs() {
        use rsp_arith::BigInt;
        let g = generators::grid(6, 6);
        let fwd: Vec<BigInt> =
            (0..g.m()).map(|e| BigInt::pow2(70) + BigInt::from(e as i64)).collect();
        let bwd: Vec<BigInt> =
            fwd.iter().map(|f| (BigInt::pow2(71) + BigInt::pow2(71)) - f.clone()).collect();
        let fault_sets = mixed_fault_sets(&g);
        let mut single = SearchScratch::<BigInt>::new();

        // Auto on a 36-vertex BigInt workload: the guard forbids snapshot
        // clones, but resumes still work through the replay path.
        let mut auto = BatchScratch::<BigInt>::new();
        dijkstra_batch(
            &g,
            &[0],
            &fault_sets,
            DirectedCosts::new(&fwd, &bwd),
            &mut auto,
            |_, fi, result| {
                dijkstra_into(&g, 0, &fault_sets[fi], DirectedCosts::new(&fwd, &bwd), &mut single);
                assert_scratches_equal(&g, result, &single, &format!("auto f{fi}"));
                ControlFlow::Continue(())
            },
        );
        assert_eq!(auto.stats().checkpoints_captured, 0, "guard must skip snapshots");
        assert_eq!(auto.stats().checkpoint_resumed, 0);
        assert!(auto.stats().prefix_resumed > 0);

        // Always overrides the guard — and stays byte-identical.
        let mut always = BatchScratch::<BigInt>::new().with_checkpoint_mode(CheckpointMode::Always);
        dijkstra_batch(
            &g,
            &[0],
            &fault_sets,
            DirectedCosts::new(&fwd, &bwd),
            &mut always,
            |_, fi, result| {
                dijkstra_into(&g, 0, &fault_sets[fi], DirectedCosts::new(&fwd, &bwd), &mut single);
                assert_scratches_equal(&g, result, &single, &format!("always f{fi}"));
                ControlFlow::Continue(())
            },
        );
        assert!(always.stats().checkpoints_captured > 0);
    }

    #[test]
    fn stats_count_bfs_queries_and_reset() {
        let g = generators::grid(4, 4);
        let fault_sets = mixed_fault_sets(&g);
        let mut batch = BatchScratch::<u32>::new();
        bfs_batch(&g, &[0, 15], &fault_sets, &mut batch, |_, _, _| ControlFlow::Continue(()));
        let stats = batch.stats().clone();
        assert_eq!(stats.queries, 2 * fault_sets.len());
        assert_eq!(
            stats.queries,
            stats.baseline_answered + stats.prefix_resumed + stats.full_searches
        );
        assert_eq!(stats.checkpoints_captured, 0, "BFS never checkpoints");
        assert_eq!(stats.reused(), stats.queries - stats.full_searches);
        assert!(!format!("{stats}").is_empty());

        batch.reset_stats();
        assert_eq!(batch.stats(), &BatchStats::default());
    }

    #[test]
    fn checkpoints_survive_source_and_graph_switches() {
        // Checkpoints captured for one source must never leak into the
        // next source's (or next graph's) resumes. Forced inline so the
        // lazy-heap snapshot path is the one exercised.
        let mut batch = BatchScratch::<u64>::new()
            .with_checkpoint_mode(CheckpointMode::Always)
            .with_heap_kind(HeapKind::InlineKey);
        let mut single = SearchScratch::<u64>::new();
        for g in [generators::grid(8, 8), generators::cycle(40), generators::grid(3, 3)] {
            let fault_sets = mixed_fault_sets(&g);
            let sources: Vec<Vertex> = vec![0, g.n() - 1];
            let cost = |e: EdgeId, _: Vertex, _: Vertex| 90u64 + e as u64 % 11;
            dijkstra_batch(&g, &sources, &fault_sets, cost, &mut batch, |si, fi, result| {
                dijkstra_into(&g, sources[si], &fault_sets[fi], cost, &mut single);
                assert_scratches_equal(&g, result, &single, &format!("switch s{si} f{fi}"));
                ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let g = generators::cycle(4);
        let mut batch = BatchScratch::<u32>::new();
        let mut calls = 0;
        let mut count = |_: usize, _: usize, _: &SearchScratch<u32>| {
            calls += 1;
            ControlFlow::Continue(())
        };
        bfs_batch(&g, &[], &[FaultSet::empty()], &mut batch, &mut count);
        bfs_batch(&g, &[0], &[], &mut batch, &mut count);
        assert_eq!(calls, 0);
        let out = bfs_batch_par::<u32, _, _>(&g, &[], &[], 4, |_, _, _| ());
        assert!(out.is_empty());
    }
}
