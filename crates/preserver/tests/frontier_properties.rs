//! Property tests for the work-stealing FT-BFS enumeration: the frontier
//! engine ([`ft_bfs_structure_frontier`] / [`ft_sv_preserver_frontier`])
//! must produce the sequential build's exact preserver — edge set and
//! tree count — for every worker count, and must expand each relevant
//! fault set exactly once even under deliberately contended scheduling
//! (many workers racing over a tiny enumeration). Exactly-once is
//! asserted through the engine's own accounting (`enumerated ==
//! deduped`: every admission expanded, nothing expanded twice) *and*
//! against the sequential tree count, so the two certificates
//! cross-check each other.

use proptest::prelude::*;
use rsp_core::RandomGridAtw;
use rsp_graph::generators;
use rsp_preserver::{ft_bfs_structure, ft_sv_preserver, ft_sv_preserver_frontier};

/// Graph parameters small enough that `f = 3` closures stay in the
/// hundreds of trees: `n` vertices, a spanning tree plus up to `n/2`
/// extra edges.
fn gnm_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (5usize..=12, 0usize..=2, any::<u64>()).prop_map(|(n, density, seed)| {
        let extra = density * n / 4;
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        (n, m, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Worker count never changes the preserver: edges and tree counts
    /// are pinned against the sequential stability enumeration for
    /// `f = 1..3` and workers 1, 2, 8.
    #[test]
    fn frontier_is_byte_identical_to_sequential(
        (n, m, seed) in gnm_params(),
        f in 1usize..=3,
        source in any::<prop::sample::Index>(),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let s = source.index(g.n());
        let scheme = RandomGridAtw::theorem20(&g, seed).into_scheme();
        let seq = ft_bfs_structure(&scheme, s, f);
        for workers in [1usize, 2, 8] {
            let (par, stats) =
                rsp_preserver::ft_bfs_structure_frontier(&scheme, s, f, workers);
            prop_assert_eq!(par.edges(), seq.edges(), "workers={}", workers);
            prop_assert_eq!(
                par.trees_computed(), seq.trees_computed(), "workers={}", workers
            );
            prop_assert_eq!(stats.enumerated, stats.deduped, "workers={}", workers);
            prop_assert_eq!(stats.enumerated, seq.trees_computed(), "workers={}", workers);
        }
    }

    /// Concurrent dedup under contention: 8 workers on enumerations of a
    /// few hundred items force constant races on the sharded visited set
    /// (the same fault set is discovered along many tree-edge paths);
    /// every relevant fault set must still be expanded exactly once, and
    /// the duplicate count must be exactly the surplus discoveries.
    #[test]
    fn contended_enumeration_visits_each_fault_set_exactly_once(
        (n, m, seed) in gnm_params(),
        source in any::<prop::sample::Index>(),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let s = source.index(g.n());
        let scheme = RandomGridAtw::theorem20(&g, seed).into_scheme();
        let seq = ft_bfs_structure(&scheme, s, 2);
        let (par, stats) = rsp_preserver::ft_bfs_structure_frontier(&scheme, s, 2, 8);
        prop_assert_eq!(stats.enumerated, stats.deduped, "exactly-once expansion");
        prop_assert_eq!(stats.enumerated, seq.trees_computed());
        prop_assert_eq!(par.edges(), seq.edges());
        prop_assert_eq!(par.trees_computed(), stats.enumerated);
    }

    /// Multi-source frontier: seeds share one worker budget, the result
    /// still equals the per-source sequential union.
    #[test]
    fn multi_source_frontier_matches_sequential_union(
        (n, m, seed) in gnm_params(),
        f in 1usize..=2,
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let sources: Vec<usize> = picks.iter().map(|p| p.index(g.n())).collect();
        let scheme = RandomGridAtw::theorem20(&g, seed).into_scheme();
        let seq = ft_sv_preserver(&scheme, &sources, f);
        for workers in [2usize, 8] {
            let (par, stats) = ft_sv_preserver_frontier(&scheme, &sources, f, workers);
            prop_assert_eq!(par.edges(), seq.edges(), "workers={}", workers);
            prop_assert_eq!(stats.enumerated, stats.deduped, "workers={}", workers);
        }
    }
}
