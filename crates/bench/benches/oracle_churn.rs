//! Churn control-plane benchmarks: fault-event ingestion throughput,
//! commit (rebuild + cross-check + publish) latency, and the full
//! injection-convergence cycle.
//!
//! Three regimes, mirroring `rsp_oracle::churn`'s contract:
//!
//! * `ingest_events_hostile` — wire-frame ingestion through decode →
//!   validate → journal/quarantine, fed the seeded hostile mix (drops,
//!   duplicates, reorders, corruptions). One iteration ingests the whole
//!   pre-perturbed frame batch, so events/sec is
//!   `FRAMES / mean`; the untimed events/sec line after the timed rows
//!   reports it directly, with the accept/quarantine split.
//! * `commit_rebuild` — one pending event, one commit: snapshot
//!   recompilation under `catch_unwind`, the 4-source batch-engine
//!   cross-check, and the epoch swap. This is the control plane's cost
//!   per published epoch.
//! * `injection_convergence` — the end-to-end harness cycle on a
//!   smaller grid: perturb a valid trace, ingest every delivered frame,
//!   commit, and verify full convergence (published snapshot equal to a
//!   fresh engine run on the accepted fault state, every cell).
//!
//! Append results to the repo's `BENCH_<n>.json` trajectory with:
//!
//! ```sh
//! CRITERION_JSON_PATH="$PWD/BENCH_7.json" \
//!   cargo bench -p rsp_bench --bench oracle_churn
//! ```

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::RandomGridAtw;
use rsp_graph::{generators, FaultEvent};
use rsp_oracle::churn::inject::{random_trace, verify_converged, InjectionPlan, StreamInjector};
use rsp_oracle::churn::ChurnPipeline;

/// Events in the hostile ingestion batch (before drops/duplicates).
const TRACE_LEN: usize = 512;

fn bench_ingest_and_commit(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let mut pipeline = ChurnPipeline::new(&scheme).expect("fault-free build succeeds");
    pipeline.set_sleeper(|_| {}); // benches never sleep through backoff

    let trace = random_trace(&g, TRACE_LEN, 0x1057);
    let frames = StreamInjector::new(InjectionPlan::hostile(0x1057)).perturb(&trace);
    println!(
        "oracle_churn/u128_grid16x16 hostile batch: {} events -> {} delivered frames",
        TRACE_LEN,
        frames.len()
    );

    let mut group = c.benchmark_group("oracle_churn/u128_grid16x16");
    group.bench_function("ingest_events_hostile", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for frame in &frames {
                accepted += usize::from(pipeline.ingest_wire(frame).is_ok());
            }
            accepted
        })
    });

    // Bring the pipeline current so each commit iteration publishes
    // exactly one pending event (arrive/repair toggles keep it valid).
    pipeline.commit().expect("commit after ingestion");
    group.bench_function("commit_rebuild", |b| {
        b.iter(|| {
            let ev = if pipeline.fault_state().faults().contains(0) {
                FaultEvent::Repair(0)
            } else {
                FaultEvent::Arrive(0)
            };
            pipeline.ingest(ev).expect("toggle event is always admissible");
            pipeline.commit().expect("healthy commit publishes").epoch
        })
    });
    group.finish();

    // Untimed events/sec measurement on a fresh pipeline (warm caches,
    // no accumulated quarantine): the operational throughput number.
    let mut fresh = ChurnPipeline::new(&scheme).expect("fault-free build succeeds");
    fresh.set_sleeper(|_| {});
    let t0 = Instant::now();
    for frame in &frames {
        let _ = fresh.ingest_wire(frame);
    }
    let secs = t0.elapsed().as_secs_f64();
    let health = fresh.health();
    println!(
        "oracle_churn/u128_grid16x16 ingest: {:.0} events/sec \
         ({} accepted, {} quarantined of {} frames)",
        frames.len() as f64 / secs,
        health.accepted_seq,
        health.quarantined_total,
        frames.len()
    );
}

fn bench_injection_convergence(c: &mut Criterion) {
    let g = generators::grid(8, 8);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let mut pipeline = ChurnPipeline::new(&scheme).expect("fault-free build succeeds");
    pipeline.set_sleeper(|_| {});
    let trace = random_trace(&g, 96, 0xc0ff_ee00);
    let mut injector = StreamInjector::new(InjectionPlan::hostile(0xc0ff_ee00));

    let mut group = c.benchmark_group("oracle_churn/u128_grid8x8");
    group.bench_function("injection_convergence", |b| {
        b.iter(|| {
            for frame in injector.perturb(&trace) {
                let _ = pipeline.ingest_wire(&frame);
            }
            pipeline.commit().expect("hostile wire input never stalls a healthy builder");
            verify_converged(&pipeline).expect("published snapshot matches the engines");
        })
    });
    group.finish();

    let health = pipeline.health();
    println!(
        "oracle_churn/u128_grid8x8 injection-convergence: {} commits, \
         {} events accepted, {} quarantined, {} full rebuilds, converged=yes",
        health.commits, health.accepted_seq, health.quarantined_total, health.full_rebuilds
    );
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ingest_and_commit, bench_injection_convergence
}
criterion_main!(benches);
