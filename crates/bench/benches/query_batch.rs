//! Batched multi-fault query benchmarks: the PR 2 per-query engine (one
//! reused `SearchScratch`, one full search per `(source, fault set)`
//! query) versus the batch engine (`dijkstra_batch` / `bfs_batch`, which
//! shares the settled search prefix between fault sets agreeing on the
//! early frontier) versus the worker-pool fan-out (`dijkstra_batch_par`).
//!
//! The workload mirrors the restorability/preserver access pattern: every
//! query batch is `sources × (∅ + fault sets)` on a tie-rich grid under
//! Theorem 20 perturbed `u128` costs, plus the unweighted BFS layer.
//! Fault-set families cover both regimes:
//!
//! * **singles** spread across the edge set (`8x33` groups) — the PR 3
//!   baseline workload, directly diffable against `BENCH_3.json`;
//! * **clustered `f = 2, 3` sets** (`f2`/`f3` groups) — the Bodwin–Wang
//!   (arXiv:2309.07964) multi-fault trade-off regime: each set's edges sit
//!   in one small neighborhood, so `prefix_len` is governed by the
//!   cluster's distance from the source rather than by any single edge.
//!
//! `per_query` is the `indexed_reuse` engine of `BENCH_2.json`;
//! `batched` is the batch engine with checkpointed resume (the default
//! `CheckpointMode::Auto`), `batched_nockpt` pins `CheckpointMode::Never`
//! so the checkpoint win is its own diffable number. After the timed rows
//! each weighted group prints its [`rsp_graph::BatchStats`] — how many
//! queries the baseline answered outright, how many restored a checkpoint,
//! and how many relaxations the replay path re-executed — so prefix-
//! sharing efficacy is measured, not inferred.
//!
//! Append results to the repo's `BENCH_<n>.json` trajectory with:
//!
//! ```sh
//! CRITERION_JSON_PATH="$PWD/BENCH_4.json" \
//!   cargo bench -p rsp_bench --bench query_batch
//! ```

use std::ops::ControlFlow;

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::RandomGridAtw;
use rsp_graph::{
    bfs_batch, bfs_batch_par, bfs_into, dijkstra_batch, dijkstra_batch_par, generators,
    BatchScratch, CheckpointMode, FaultSet, Graph, SearchScratch, Vertex,
};

/// `∅` plus `queries` single faults spread across the edge set: most are
/// far from any given source, which is exactly the prefix-sharing regime.
fn fault_batch(g: &Graph, queries: usize) -> Vec<FaultSet> {
    std::iter::once(FaultSet::empty())
        .chain((0..queries).map(|i| FaultSet::single(i * g.m() / queries)))
        .collect()
}

/// `∅` plus `count` clustered `f`-edge fault sets, each clustered around a
/// center vertex spread across the graph: a correlated failure (a router
/// and its uplinks) rather than `f` independent ones. Deterministic so
/// runs are diffable.
fn clustered_fault_batch(g: &Graph, f: usize, count: usize) -> Vec<FaultSet> {
    std::iter::once(FaultSet::empty())
        .chain((0..count).map(|i| {
            let center = i * g.n() / count;
            // Grow the cluster outward from the center in discovery
            // order until it holds f distinct edges.
            let mut edges: Vec<usize> = Vec::with_capacity(f);
            let mut cluster = vec![center];
            let mut next = 0;
            while edges.len() < f && next < cluster.len() {
                let u = cluster[next];
                next += 1;
                for (v, e) in g.neighbors(u) {
                    if edges.len() >= f {
                        break;
                    }
                    if !edges.contains(&e) {
                        edges.push(e);
                        cluster.push(v);
                    }
                }
            }
            FaultSet::from_edges(edges)
        }))
        .collect()
}

/// One weighted group: `per_query` vs `batched` (checkpoints on, Auto) vs
/// `batched_nockpt` (checkpoints off), then a stats print for the
/// checkpointed configuration. `parallel_workers` adds `batched_par<w>`
/// rows (the singles family keeps them for BENCH_3 diffability).
fn bench_weighted_family(
    c: &mut Criterion,
    label: &str,
    g: &Graph,
    sources: &[Vertex],
    faults: &[FaultSet],
    parallel_workers: &[usize],
) {
    let scheme = RandomGridAtw::theorem20(g, 42).into_scheme();

    let mut group = c.benchmark_group(label);
    let mut single = SearchScratch::<u128>::with_capacity(g.n());
    group.bench_function("per_query", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for &s in sources {
                for f in faults {
                    scheme.spt_into(s, f, &mut single);
                    reached += single.reachable_count();
                }
            }
            reached
        })
    });
    let mut batch = BatchScratch::<u128>::with_capacity(g.n());
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            dijkstra_batch(g, sources, faults, scheme.directed_costs(), &mut batch, |_, _, r| {
                reached += r.reachable_count();
                ControlFlow::Continue(())
            });
            reached
        })
    });
    let mut nockpt =
        BatchScratch::<u128>::with_capacity(g.n()).with_checkpoint_mode(CheckpointMode::Never);
    group.bench_function("batched_nockpt", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            dijkstra_batch(g, sources, faults, scheme.directed_costs(), &mut nockpt, |_, _, r| {
                reached += r.reachable_count();
                ControlFlow::Continue(())
            });
            reached
        })
    });
    for &workers in parallel_workers {
        group.bench_function(format!("batched_par{workers}"), |b| {
            b.iter(|| {
                dijkstra_batch_par(
                    g,
                    sources,
                    faults,
                    || scheme.directed_costs(),
                    workers,
                    |_, _, r| r.reachable_count(),
                )
                .into_iter()
                .flatten()
                .sum::<usize>()
            })
        });
    }
    group.finish();

    // One clean pass per configuration so the printed stats describe a
    // single batch, not an iteration-count multiple.
    batch.reset_stats();
    dijkstra_batch(g, sources, faults, scheme.directed_costs(), &mut batch, |_, _, _| {
        ControlFlow::Continue(())
    });
    println!("{label}/batched stats: {}", batch.stats());
    nockpt.reset_stats();
    dijkstra_batch(g, sources, faults, scheme.directed_costs(), &mut nockpt, |_, _, _| {
        ControlFlow::Continue(())
    });
    println!("{label}/batched_nockpt stats: {}", nockpt.stats());
}

fn bench_weighted(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let sources: Vec<Vertex> = (0..8).map(|i| i * g.n() / 8).collect();
    let faults = fault_batch(&g, 32);
    bench_weighted_family(c, "query_batch/u128_grid16x16_8x33", &g, &sources, &faults, &[2, 4]);
}

/// The ROADMAP dense workload: `G(n, m ≈ n^1.5)`. Checkpointed resume
/// saves `O(prefix edges)` of replay, so its payoff grows with density —
/// degree-4 grids barely notice checkpoints, a degree-24 G(n,m) should.
/// The checkpoint depth schedule was re-tuned on this family (see
/// `rsp_graph::batch`'s depth constants and the README "Performance"
/// note for the measured outcome).
fn bench_weighted_dense(c: &mut Criterion) {
    // n = 144, m = 144^1.5 = 1728: average degree 24 on as many vertices
    // as the bench budget allows at sample_size 20.
    let g = generators::connected_gnm(144, 1728, 7);
    let sources: Vec<Vertex> = (0..8).map(|i| i * g.n() / 8).collect();
    let faults = fault_batch(&g, 32);
    bench_weighted_family(c, "query_batch/u128_gnm144_1728_8x33", &g, &sources, &faults, &[]);
}

/// The Bodwin–Wang multi-fault regime: clustered `f = 2, 3` fault sets.
fn bench_weighted_multifault(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let sources: Vec<Vertex> = (0..8).map(|i| i * g.n() / 8).collect();
    for f in [2usize, 3] {
        let faults = clustered_fault_batch(&g, f, 16);
        let label = format!("query_batch/u128_grid16x16_f{f}_8x17");
        bench_weighted_family(c, &label, &g, &sources, &faults, &[]);
    }
}

fn bench_bfs(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let sources: Vec<Vertex> = (0..8).map(|i| i * g.n() / 8).collect();
    let faults = fault_batch(&g, 32);

    let mut group = c.benchmark_group("query_batch/bfs_grid16x16_8x33");
    let mut single = SearchScratch::<u32>::with_capacity(g.n());
    group.bench_function("per_query", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for &s in &sources {
                for f in &faults {
                    bfs_into(&g, s, f, &mut single);
                    reached += single.reachable_count();
                }
            }
            reached
        })
    });
    let mut batch = BatchScratch::<u32>::with_capacity(g.n());
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            bfs_batch(&g, &sources, &faults, &mut batch, |_, _, r| {
                reached += r.reachable_count();
                ControlFlow::Continue(())
            });
            reached
        })
    });
    group.bench_function("batched_par4", |b| {
        b.iter(|| {
            bfs_batch_par::<u32, _, _>(&g, &sources, &faults, 4, |_, _, r| r.reachable_count())
                .into_iter()
                .flatten()
                .sum::<usize>()
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_weighted, bench_weighted_dense, bench_weighted_multifault, bench_bfs
}
criterion_main!(benches);
