//! Directed acyclic graphs and the empirical DAG extension of restorable
//! tiebreaking.
//!
//! Section 1.2 of Bodwin & Parter notes that both restoration lemmas
//! extend to DAGs, and leaves as **future work** whether the main result
//! (a single selected path per pair whose concatenations restore all
//! replacement paths) admits a DAG analogue: *"It seems very plausible
//! that our main result admits some kind of extension to unweighted
//! DAGs, but we leave the appropriate formulation and proof as a
//! direction for future work."*
//!
//! This crate supplies the substrate and the experiment:
//!
//! * [`Digraph`] — a directed CSR graph with arc identifiers, in/out
//!   adjacency, topological sorting, and directed BFS under arc faults;
//! * [`generators`] — random DAGs, layered DAGs, and the directed grid
//!   (the canonical tie-rich DAG);
//! * [`DagScheme`] — canonical unique shortest paths by random integer
//!   perturbation (the Theorem 20 recipe; in a DAG every arc has a single
//!   orientation, so antisymmetry is vacuous);
//! * [`dag_restoration_stats`] — the open question, measured: for each
//!   `(s, t, failing arc)`, can the replacement path be written as
//!   `π(s, x) ∘ π(x, t)` for *selected* paths? Compared against
//!   [`existential_restoration_stats`], the known-true existential DAG
//!   restoration lemma.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), and the
//! preserver enumeration pipeline.
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`Digraph`], [`generators`] | Section 1.2's unweighted-DAG setting |
//! | [`DagScheme`] | the Theorem 20 recipe transplanted (antisymmetry vacuous on arcs) |
//! | [`dag_restoration_stats`] | the open question, measured: selected-path concatenation on DAGs |
//! | [`existential_restoration_stats`] | the known-true existential DAG restoration lemma (control) |
//!
//! # Examples
//!
//! ```
//! use rsp_dag::{generators, DagScheme, dag_restoration_stats};
//!
//! let d = generators::grid_dag(3, 3); // all arcs point right/down
//! let scheme = DagScheme::new(&d, 42);
//! let stats = dag_restoration_stats(&scheme);
//! // The conjecture holds on every instance we have ever measured:
//! assert_eq!(stats.failed, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
pub mod generators;
mod restore;
mod scheme;

pub use digraph::{ArcFaults, ArcId, DagError, Digraph, DirectedBfs};
pub use restore::{dag_restoration_stats, existential_restoration_stats, DagRestorationStats};
pub use scheme::DagScheme;
