//! Fault-tolerant network design: preservers, spanners, and the sizes the
//! theory promises (Sections 4.1 and 4.4).
//!
//! Scenario: a dense data-center-ish fabric must be thinned to a sparse
//! backup overlay that (a) preserves exact distances among a set of
//! gateway nodes under any 2 simultaneous link failures, and (b) keeps
//! all-pairs distances within +4 under any single failure.
//!
//! ```text
//! cargo run --example network_design
//! ```

use restorable_tiebreaking::core::{verify::sample_fault_sets, RandomGridAtw};
use restorable_tiebreaking::graph::generators;
use restorable_tiebreaking::preserver::{ft_subset_preserver, verify_preserver, PairSet};
use restorable_tiebreaking::spanner::{
    ft_additive_spanner, theorem33_sigma, verify_spanner_stretch,
};

fn main() {
    let n = 80;
    let g = generators::connected_gnm(n, n * (n - 1) / 6, 2024);
    println!("fabric: n = {}, m = {} (dense)", g.n(), g.m());

    let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();

    // (a) 2-FT subset preserver over 5 gateways (Theorem 31).
    let gateways = vec![0, 16, 32, 48, 64];
    let preserver = ft_subset_preserver(&scheme, &gateways, 2);
    println!(
        "\n2-FT gateway preserver: {} edges ({}% of fabric)",
        preserver.edge_count(),
        100 * preserver.edge_count() / g.m()
    );
    let faults = sample_fault_sets(g.m(), 2, 40, 7);
    verify_preserver(&g, &preserver, &PairSet::subset(gateways.clone()), &faults)
        .expect("exact gateway distances preserved under 2 faults");
    println!("verified: exact gateway-to-gateway distances under 40 sampled 2-fault sets");

    // (b) 1-FT +4 additive spanner for everyone (Theorem 7).
    let sigma = theorem33_sigma(g.n(), 1);
    let spanner = ft_additive_spanner(&scheme, sigma, 1, 99);
    println!(
        "\n1-FT +4 spanner: {} edges ({}% of fabric), {} cluster centers, {} clustered nodes",
        spanner.edge_count(),
        100 * spanner.edge_count() / g.m(),
        spanner.centers().len(),
        spanner.clustered_count(),
    );
    let single_faults = sample_fault_sets(g.m(), 1, 30, 9);
    verify_spanner_stretch(&g, &spanner, 4, &single_faults)
        .expect("+4 stretch under any sampled failure");
    println!("verified: all-pairs distances within +4 under 30 sampled single failures");

    println!(
        "\nbound check: spanner edges {} vs O(n^1.5) = {:.0}",
        spanner.edge_count(),
        (g.n() as f64).powf(1.5)
    );
}
