//! Serving-layer benchmarks: queries/sec through the epoch-swapped
//! oracle at 1..4 reader threads, and query latency during a
//! publish-under-load storm.
//!
//! The workload is the serving regime the oracle was built for: a
//! compiled `u128` grid scheme answering a fixed mix of `(s, F)`
//! queries — fault-free and off-tree faults (the zero-traversal fast
//! path) interleaved with on-tree faults (the engine path in the
//! reader's warm scratch). `inline_reader` times one query; the
//! `readers_N` rows time one full round (N threads × `QUERIES_PER_ITER`
//! queries each), so aggregate throughput is
//! `N × QUERIES_PER_ITER / mean`. `swap_under_load` times the same
//! round for one reader while a publisher thread storms snapshot
//! epochs; after the timed rows the bench prints the storm's per-query
//! p50/p99/max latency so tail behavior during swaps is measured, not
//! inferred.
//!
//! On a single-core container the `readers_2`/`readers_4` rows are
//! thread-overhead floors, not speedups (see the `BENCH_6.json`
//! provenance line); re-run on multi-core hardware before citing
//! scaling numbers.
//!
//! Append results to the repo's `BENCH_<n>.json` trajectory with:
//!
//! ```sh
//! CRITERION_JSON_PATH="$PWD/BENCH_6.json" \
//!   cargo bench -p rsp_bench --bench oracle_serving
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::RandomGridAtw;
use rsp_graph::{generators, FaultSet, Vertex};
use rsp_oracle::{Oracle, OracleSnapshot};

/// Queries per reader thread per timed iteration.
const QUERIES_PER_ITER: usize = 64;

/// The far-corner target every query reads a distance for.
const TARGET: Vertex = 255;

/// The query mix: fault-free, off-tree single faults (fast path), an
/// on-tree single fault and a mixed pair (engine path), over spread
/// sources. Returns the pool and the fraction of fast-path cells.
fn query_pool(oracle: &Oracle<u128>) -> (Vec<(Vertex, FaultSet)>, f64) {
    let snap = oracle.snapshot();
    let g = snap.graph();
    let sources = [0usize, 85, 170, 255];
    let mut pool = Vec::new();
    for &s in &sources {
        let baseline = snap.baseline(s).expect("all sources served");
        // First hop of the selected route toward TARGET (or the opposite
        // corner when s is TARGET): failing it forces the engine path.
        let mut on_tree = None;
        let mut cur = if s == TARGET { 0 } else { TARGET };
        while let Some((p, e)) = baseline.parent(cur) {
            on_tree = Some(e);
            cur = p;
        }
        let on_tree = on_tree.expect("grid is connected");
        let off_tree = (0..g.m())
            .find(|&e| {
                let (u, v) = g.endpoints(e);
                baseline.parent(u).is_none_or(|(_, pe)| pe != e)
                    && baseline.parent(v).is_none_or(|(_, pe)| pe != e)
            })
            .expect("a grid has non-tree edges");
        pool.push((s, FaultSet::empty()));
        pool.push((s, FaultSet::single(off_tree)));
        pool.push((s, FaultSet::single(on_tree)));
        pool.push((s, FaultSet::from_edges([on_tree, off_tree])));
    }
    let mut scratch = rsp_graph::SearchScratch::with_capacity(g.n());
    let fast = pool.iter().filter(|(s, f)| snap.query(*s, f, &mut scratch).from_baseline()).count();
    let fast_fraction = fast as f64 / pool.len() as f64;
    (pool, fast_fraction)
}

/// One reader round: `QUERIES_PER_ITER` queries off the pool, rotated by
/// `tid` so concurrent threads walk different cells.
fn reader_round(
    reader: &mut rsp_oracle::OracleReader<u128>,
    pool: &[(Vertex, FaultSet)],
    tid: usize,
) -> u64 {
    let mut acc = 0u64;
    for q in 0..QUERIES_PER_ITER {
        let (s, f) = &pool[(q * 7 + tid) % pool.len()];
        acc += u64::from(reader.query(*s, f).dist(TARGET).expect("grid stays connected"));
    }
    acc
}

fn bench_thread_scaling(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let oracle = Oracle::build(&scheme);
    let (pool, fast_fraction) = query_pool(&oracle);
    println!(
        "oracle_serving/u128_grid16x16_f1 pool: {} cells, {:.0}% fast-path",
        pool.len(),
        100.0 * fast_fraction
    );

    let mut group = c.benchmark_group("oracle_serving/u128_grid16x16_f1");
    let mut inline_reader = oracle.reader();
    let mut i = 0usize;
    group.bench_function("inline_reader", |b| {
        b.iter(|| {
            let (s, f) = &pool[i % pool.len()];
            i += 1;
            inline_reader.query(*s, f).dist(TARGET)
        })
    });

    for threads in [1usize, 2, 4] {
        let mut readers: Vec<_> = (0..threads).map(|_| oracle.reader()).collect();
        group.bench_function(format!("readers_{threads}"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for (tid, reader) in readers.iter_mut().enumerate() {
                        let pool = &pool;
                        scope.spawn(move || reader_round(reader, pool, tid));
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_swap_under_load(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let oracle = Oracle::build(&scheme);
    let (pool, _) = query_pool(&oracle);

    // Two prebuilt snapshot generations the publisher alternates between
    // (distinct seeds, same topology): every publish is a pure swap, so
    // the storm stresses the epoch mechanism, not snapshot compilation.
    let alternate = RandomGridAtw::theorem20(&g, 43).into_scheme();
    let generations: Arc<[OracleSnapshot<u128>; 2]> = Arc::new([
        OracleSnapshot::builder(&scheme).version(1).build(),
        OracleSnapshot::builder(&alternate).version(2).build(),
    ]);

    let stop = Arc::new(AtomicBool::new(false));
    let published = Arc::new(AtomicU64::new(0));
    let publisher = {
        let (oracle, generations) = (oracle.clone(), Arc::clone(&generations));
        let (stop, published) = (Arc::clone(&stop), Arc::clone(&published));
        std::thread::spawn(move || {
            let mut k = 0usize;
            while !stop.load(Ordering::Acquire) {
                oracle.publish(generations[k % 2].clone());
                published.fetch_add(1, Ordering::Relaxed);
                k += 1;
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        })
    };

    let mut group = c.benchmark_group("oracle_serving/u128_grid16x16_swap");
    let mut reader = oracle.reader();
    group.bench_function("swap_under_load", |b| b.iter(|| reader_round(&mut reader, &pool, 0)));
    group.finish();

    // Untimed tail measurement: per-query latency for one reader during
    // the ongoing storm.
    let mut lat: Vec<u64> = Vec::with_capacity(20_000);
    let epochs_before = published.load(Ordering::Relaxed);
    for q in 0..20_000usize {
        let (s, f) = &pool[(q * 7) % pool.len()];
        let t0 = Instant::now();
        let d = reader.query(*s, f).dist(TARGET);
        lat.push(t0.elapsed().as_nanos() as u64);
        assert!(d.is_some());
    }
    let epochs_during = published.load(Ordering::Relaxed) - epochs_before;
    stop.store(true, Ordering::Release);
    publisher.join().expect("publisher thread");

    lat.sort_unstable();
    let pick = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    println!(
        "oracle_serving/u128_grid16x16_swap latency: p50={}ns p99={}ns max={}ns \
         over {} queries, {} epochs published during storm",
        pick(0.50),
        pick(0.99),
        lat[lat.len() - 1],
        lat.len(),
        epochs_during
    );
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_thread_scaling, bench_swap_under_load
}
criterion_main!(benches);
