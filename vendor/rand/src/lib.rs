//! Offline stand-in for the subset of `rand` 0.9 this workspace uses.
//!
//! The build image has no network access to crates.io, so the workspace
//! vendors a minimal implementation of exactly the API surface the code
//! calls: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`Rng::random_range`], [`Rng::random_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — not `rand`'s ChaCha12, so *streams differ from upstream
//! `rand`*, but every consumer in this workspace only requires a
//! deterministic, well-mixed stream for a fixed seed.
//!
//! Swapping the real `rand` back in is a one-line change in the workspace
//! manifest; no source edits are required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high bits of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b`, `a..=b`, or `a..`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna),
    /// state-expanded from the seed with SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Uniform range sampling (the `rand::distr` corner this workspace needs).
pub mod distr {
    use crate::Rng;

    /// A range that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: Rng>(self, rng: &mut R) -> T;
    }

    /// Uniform `v` in `[0, width)`; `width == 0` means the full 128 bits.
    fn sample_u128<R: Rng>(rng: &mut R, width: u128) -> u128 {
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if width == 0 {
            raw
        } else {
            // Modulo of 128 fresh bits: bias ≤ width/2^128, far below any
            // observable effect for the ≤ 2^63-wide ranges used here.
            raw % width
        }
    }

    macro_rules! impl_sample_range {
        ($($t:ty => $u:ty),* $(,)?) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let width = (self.end as $u).wrapping_sub(self.start as $u);
                    let v = sample_u128(rng, width as u128) as $u;
                    self.start.wrapping_add(v as $t)
                }
            }

            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let width =
                        (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                    // width == 0 means the range covers the whole type, and
                    // sample_u128 treats 0 as "all 128 bits": the cast back
                    // to $u then yields a uniform full-width sample.
                    let v = sample_u128(rng, width as u128) as $u;
                    lo.wrapping_add(v as $t)
                }
            }

            impl SampleRange<$t> for core::ops::RangeFrom<$t> {
                fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                    (self.start..=<$t>::MAX).sample_single(rng)
                }
            }
        )*};
    }

    impl_sample_range! {
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128,
        usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128,
        isize => usize,
    }
}

/// Sequence helpers.
pub mod seq {
    use crate::RngCore;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.random_range(3usize..10);
            assert!((3..10).contains(&u));
            let w = rng.random_range(1u64..);
            assert!(w >= 1);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
