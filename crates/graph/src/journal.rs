//! Durable journal framing: length-prefixed, CRC-checksummed frames
//! for fault-event streams.
//!
//! The in-memory journal of a churn pipeline is a `Vec<FaultEvent>`;
//! this module is its *durable* form — the byte stream a control plane
//! writes to disk (or ships to a standby) and recovers from after a
//! crash. Two properties drive the format:
//!
//! * **Every frame is independently verifiable.** A frame is
//!   `[len: u32 LE][payload][crc32: u32 LE]`, where the CRC covers the
//!   length prefix *and* the payload. A flipped bit anywhere in a frame
//!   is detected by the checksum, never folded into the fault state.
//! * **A torn tail is a clean recovery point.** Journals die mid-write:
//!   a final frame cut short by a crash is *expected*, not an error.
//!   [`decode_journal`] distinguishes a **torn tail** (the bytes simply
//!   run out mid-frame — recover everything before it) from **interior
//!   corruption** (a frame that is fully present but fails its
//!   checksum, carries an unknown kind, or declares an absurd length —
//!   a typed [`JournalDecodeError`], never a panic).
//!
//! Two frame kinds exist: an **event** frame wrapping one 9-byte
//! [`FaultEvent`] wire frame, and a **checkpoint** frame serializing a
//! folded [`FaultState`] plus the journal sequence and oracle epoch it
//! summarizes — the compaction point that lets recovery skip replaying
//! history event by event.
//!
//! One documented ambiguity: corruption *inside the final frame's
//! length prefix* can make the frame claim more bytes than remain, which
//! is indistinguishable from a torn write and recovers as one. That
//! trade is deliberate — treating it as fatal would turn every real
//! torn write into an unrecoverable journal.
//!
//! # Examples
//!
//! ```
//! use rsp_graph::journal::{decode_journal, JournalFrame, JournalTail};
//! use rsp_graph::FaultEvent;
//!
//! let mut bytes = Vec::new();
//! JournalFrame::Event(FaultEvent::Arrive(3)).encode_into(&mut bytes);
//! JournalFrame::Event(FaultEvent::Repair(3)).encode_into(&mut bytes);
//!
//! // A crash tears the last frame mid-write:
//! bytes.truncate(bytes.len() - 5);
//! let decoded = decode_journal(&bytes).unwrap();
//! assert_eq!(decoded.frames, vec![JournalFrame::Event(FaultEvent::Arrive(3))]);
//! assert!(matches!(decoded.tail, JournalTail::Torn { .. }));
//! ```

use crate::event::{FaultEvent, FaultState, WireEventError, WIRE_EVENT_LEN};
use crate::fault::FaultSet;
use crate::graph::EdgeId;

/// The IEEE 802.3 CRC-32 lookup table (reflected polynomial
/// `0xEDB88320`), generated at compile time — the image is offline, so
/// the checksum is hand-rolled rather than pulled from a crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE 802.3) checksum of `bytes`.
///
/// # Examples
///
/// ```
/// use rsp_graph::journal::crc32;
/// // The classic check value for the ASCII string "123456789".
/// assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
/// assert_eq!(crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Frame kind tag: one journaled [`FaultEvent`].
const KIND_EVENT: u8 = 0x01;
/// Frame kind tag: a [`JournalCheckpoint`].
const KIND_CHECKPOINT: u8 = 0x02;

/// Upper bound on a single frame's declared payload length. A frame
/// whose length prefix exceeds this is interior corruption
/// ([`JournalDecodeError::FrameTooLong`]), not a request for 4 GiB of
/// buffer: real frames are 10 bytes (events) or `32 + 8·|F|` bytes
/// (checkpoints), both nowhere near the cap.
pub const MAX_JOURNAL_FRAME_LEN: usize = 1 << 26;

/// A compaction point: the fold of every accepted event up to and
/// including sequence [`JournalCheckpoint::seq`], plus the oracle epoch
/// that was serving when the checkpoint was taken.
///
/// Recovery from `(checkpoint, tail)` is state-identical to replaying
/// the whole journal from genesis — the recovery-equivalence proptests
/// in `rsp_oracle` pin this at every compaction point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalCheckpoint {
    /// Journal sequence of the last event folded into `state`.
    pub seq: u64,
    /// The oracle epoch serving when the checkpoint was taken
    /// (informational: recovery republishes under a fresh epoch).
    pub epoch: u64,
    /// The folded fault state at `seq`.
    pub state: FaultState,
}

/// One decoded journal frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalFrame {
    /// One accepted fault event.
    Event(FaultEvent),
    /// A compaction checkpoint.
    Checkpoint(JournalCheckpoint),
}

impl JournalFrame {
    /// Appends this frame's encoding (`len ++ payload ++ crc`) to `out`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::journal::{decode_journal, JournalFrame, JournalTail};
    /// use rsp_graph::FaultEvent;
    ///
    /// let mut bytes = Vec::new();
    /// JournalFrame::Event(FaultEvent::Arrive(7)).encode_into(&mut bytes);
    /// let decoded = decode_journal(&bytes).unwrap();
    /// assert_eq!(decoded.frames.len(), 1);
    /// assert_eq!(decoded.tail, JournalTail::Clean);
    /// ```
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        match self {
            JournalFrame::Event(ev) => {
                payload.push(KIND_EVENT);
                payload.extend_from_slice(&ev.encode());
            }
            JournalFrame::Checkpoint(c) => {
                payload.push(KIND_CHECKPOINT);
                payload.extend_from_slice(&c.seq.to_le_bytes());
                payload.extend_from_slice(&c.epoch.to_le_bytes());
                payload.extend_from_slice(&(c.state.edge_count() as u64).to_le_bytes());
                payload.extend_from_slice(&(c.state.faults().len() as u64).to_le_bytes());
                for e in c.state.faults().iter() {
                    payload.extend_from_slice(&(e as u64).to_le_bytes());
                }
            }
        }
        let start = out.len();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }
}

/// Why a checkpoint frame's body failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointDecodeError {
    /// The body is shorter than its fixed header or its declared edge
    /// list.
    Truncated {
        /// Bytes actually present in the body.
        got: usize,
        /// Bytes the body needed.
        need: usize,
    },
    /// The graph edge count does not fit this platform's `usize`.
    EdgeCountOverflow {
        /// The 64-bit edge count received.
        m: u64,
    },
    /// The fault list claims more edges than the graph has.
    TooManyFaults {
        /// The declared fault count.
        k: u64,
        /// The declared graph edge count.
        m: u64,
    },
    /// A fault edge id is not an edge of the declared graph.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: u64,
        /// The declared graph edge count.
        m: u64,
    },
    /// The fault edge list is not strictly increasing — the canonical
    /// [`FaultSet`] order every encoder produces.
    NotStrictlyIncreasing {
        /// 0-based index of the offending edge in the list.
        index: usize,
    },
}

impl std::fmt::Display for CheckpointDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointDecodeError::Truncated { got, need } => {
                write!(f, "checkpoint body has {got} bytes, needs {need}")
            }
            CheckpointDecodeError::EdgeCountOverflow { m } => {
                write!(f, "checkpoint edge count {m} overflows usize")
            }
            CheckpointDecodeError::TooManyFaults { k, m } => {
                write!(f, "checkpoint claims {k} faults on a graph with {m} edges")
            }
            CheckpointDecodeError::EdgeOutOfRange { edge, m } => {
                write!(f, "checkpoint fault edge {edge} out of range (graph has {m} edges)")
            }
            CheckpointDecodeError::NotStrictlyIncreasing { index } => {
                write!(f, "checkpoint fault list not strictly increasing at index {index}")
            }
        }
    }
}

impl std::error::Error for CheckpointDecodeError {}

/// Interior corruption found while decoding a journal stream: a frame
/// that is fully present but invalid. (Bytes that simply run out are a
/// torn tail — see [`JournalTail::Torn`] — not an error.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalDecodeError {
    /// A length prefix exceeds [`MAX_JOURNAL_FRAME_LEN`].
    FrameTooLong {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// The declared payload length.
        len: usize,
    },
    /// A frame's checksum does not match its contents.
    BadCrc {
        /// Byte offset of the frame's length prefix.
        offset: usize,
    },
    /// A frame declares an empty payload (no kind byte).
    EmptyFrame {
        /// Byte offset of the frame's length prefix.
        offset: usize,
    },
    /// A frame's kind byte is unknown.
    BadKind {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// The kind byte received.
        kind: u8,
    },
    /// An event frame's body failed the wire-event codec.
    BadEvent {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// The codec's reason.
        source: WireEventError,
    },
    /// A checkpoint frame's body failed validation.
    BadCheckpoint {
        /// Byte offset of the frame's length prefix.
        offset: usize,
        /// The validation failure.
        source: CheckpointDecodeError,
    },
}

impl std::fmt::Display for JournalDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalDecodeError::FrameTooLong { offset, len } => {
                write!(f, "frame at byte {offset} declares absurd payload length {len}")
            }
            JournalDecodeError::BadCrc { offset } => {
                write!(f, "frame at byte {offset} failed its CRC-32 check")
            }
            JournalDecodeError::EmptyFrame { offset } => {
                write!(f, "frame at byte {offset} has an empty payload")
            }
            JournalDecodeError::BadKind { offset, kind } => {
                write!(f, "frame at byte {offset} has unknown kind {kind:#04x}")
            }
            JournalDecodeError::BadEvent { offset, source } => {
                write!(f, "event frame at byte {offset} invalid: {source}")
            }
            JournalDecodeError::BadCheckpoint { offset, source } => {
                write!(f, "checkpoint frame at byte {offset} invalid: {source}")
            }
        }
    }
}

impl std::error::Error for JournalDecodeError {}

/// How a decoded journal stream ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalTail {
    /// The final frame ended exactly at the end of the bytes.
    Clean,
    /// The bytes ran out mid-frame — a torn write. Everything before
    /// `offset` decoded cleanly and is safe to recover.
    Torn {
        /// Byte offset where the incomplete frame starts.
        offset: usize,
    },
}

/// The result of [`decode_journal`]: every cleanly decoded frame, plus
/// how the stream ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedJournal {
    /// The decoded frames, in stream order.
    pub frames: Vec<JournalFrame>,
    /// Whether the stream ended cleanly or mid-frame.
    pub tail: JournalTail,
}

/// Decodes a journal byte stream frame by frame. **Never panics,
/// whatever the bytes** — the garbage-injection proptests in
/// `rsp_oracle` feed this arbitrary mutations.
///
/// Bytes running out mid-frame is a *torn tail* (`Ok` with
/// [`JournalTail::Torn`]): a crash mid-write is the expected failure
/// mode and everything before the tear recovers. A frame that is fully
/// present but invalid — bad checksum, unknown kind, undecodable body,
/// absurd length — is *interior corruption* and returns a typed
/// [`JournalDecodeError`].
///
/// # Examples
///
/// ```
/// use rsp_graph::journal::{decode_journal, JournalDecodeError, JournalFrame};
/// use rsp_graph::FaultEvent;
///
/// let mut bytes = Vec::new();
/// JournalFrame::Event(FaultEvent::Arrive(1)).encode_into(&mut bytes);
/// JournalFrame::Event(FaultEvent::Repair(1)).encode_into(&mut bytes);
///
/// // A flipped bit inside the first frame is interior corruption:
/// bytes[6] ^= 0x40;
/// assert_eq!(decode_journal(&bytes), Err(JournalDecodeError::BadCrc { offset: 0 }));
/// ```
pub fn decode_journal(bytes: &[u8]) -> Result<DecodedJournal, JournalDecodeError> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let offset = pos;
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            return Ok(DecodedJournal { frames, tail: JournalTail::Torn { offset } });
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("slice is 4 bytes")) as usize;
        if len > MAX_JOURNAL_FRAME_LEN {
            return Err(JournalDecodeError::FrameTooLong { offset, len });
        }
        let Some(payload) = bytes.get(pos + 4..pos + 4 + len) else {
            return Ok(DecodedJournal { frames, tail: JournalTail::Torn { offset } });
        };
        let Some(crc_bytes) = bytes.get(pos + 4 + len..pos + 8 + len) else {
            return Ok(DecodedJournal { frames, tail: JournalTail::Torn { offset } });
        };
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("slice is 4 bytes"));
        if crc32(&bytes[pos..pos + 4 + len]) != stored {
            return Err(JournalDecodeError::BadCrc { offset });
        }
        let Some((&kind, body)) = payload.split_first() else {
            return Err(JournalDecodeError::EmptyFrame { offset });
        };
        match kind {
            KIND_EVENT => {
                let ev = FaultEvent::decode(body)
                    .map_err(|source| JournalDecodeError::BadEvent { offset, source })?;
                frames.push(JournalFrame::Event(ev));
            }
            KIND_CHECKPOINT => {
                let c = decode_checkpoint(body)
                    .map_err(|source| JournalDecodeError::BadCheckpoint { offset, source })?;
                frames.push(JournalFrame::Checkpoint(c));
            }
            kind => return Err(JournalDecodeError::BadKind { offset, kind }),
        }
        pos += 8 + len;
    }
    Ok(DecodedJournal { frames, tail: JournalTail::Clean })
}

/// Fixed header of a checkpoint body: seq + epoch + m + fault count.
const CHECKPOINT_HEADER_LEN: usize = 32;

/// Decodes and validates a checkpoint frame body (everything after the
/// kind byte): `seq u64 | epoch u64 | m u64 | k u64 | k × edge u64`,
/// all little-endian, edges strictly increasing.
fn decode_checkpoint(body: &[u8]) -> Result<JournalCheckpoint, CheckpointDecodeError> {
    let read_u64 = |at: usize| -> u64 {
        u64::from_le_bytes(body[at..at + 8].try_into().expect("slice is 8 bytes"))
    };
    if body.len() < CHECKPOINT_HEADER_LEN {
        return Err(CheckpointDecodeError::Truncated {
            got: body.len(),
            need: CHECKPOINT_HEADER_LEN,
        });
    }
    let seq = read_u64(0);
    let epoch = read_u64(8);
    let m_raw = read_u64(16);
    let k = read_u64(24);
    let m: usize =
        m_raw.try_into().map_err(|_| CheckpointDecodeError::EdgeCountOverflow { m: m_raw })?;
    if k > m_raw {
        return Err(CheckpointDecodeError::TooManyFaults { k, m: m_raw });
    }
    let need = CHECKPOINT_HEADER_LEN + (k as usize) * 8;
    if body.len() < need {
        return Err(CheckpointDecodeError::Truncated { got: body.len(), need });
    }
    let mut edges: Vec<EdgeId> = Vec::with_capacity(k as usize);
    for i in 0..k as usize {
        let raw = read_u64(CHECKPOINT_HEADER_LEN + i * 8);
        if raw >= m_raw {
            return Err(CheckpointDecodeError::EdgeOutOfRange { edge: raw, m: m_raw });
        }
        // m fits usize and raw < m, so the cast is lossless.
        let edge = raw as EdgeId;
        if edges.last().is_some_and(|&prev| prev >= edge) {
            return Err(CheckpointDecodeError::NotStrictlyIncreasing { index: i });
        }
        edges.push(edge);
    }
    let state = FaultState::with_faults(m, FaultSet::from_edges(edges))
        .expect("edges validated against m above");
    Ok(JournalCheckpoint { seq, epoch, state })
}

/// Convenience: encodes `events` as a pure event-frame stream (no
/// checkpoint) — the genesis-journal byte form.
///
/// # Examples
///
/// ```
/// use rsp_graph::journal::{decode_journal, encode_events, JournalFrame, JournalTail};
/// use rsp_graph::FaultEvent;
///
/// let events = [FaultEvent::Arrive(2), FaultEvent::Repair(2)];
/// let bytes = encode_events(&events);
/// let decoded = decode_journal(&bytes).unwrap();
/// assert_eq!(decoded.tail, JournalTail::Clean);
/// let roundtrip: Vec<_> = decoded
///     .frames
///     .into_iter()
///     .map(|f| match f {
///         JournalFrame::Event(ev) => ev,
///         JournalFrame::Checkpoint(_) => unreachable!(),
///     })
///     .collect();
/// assert_eq!(roundtrip, events);
/// ```
pub fn encode_events(events: &[FaultEvent]) -> Vec<u8> {
    // len(4) + kind(1) + wire event + crc(4) per frame.
    let mut out = Vec::with_capacity(events.len() * (9 + WIRE_EVENT_LEN));
    for &ev in events {
        JournalFrame::Event(ev).encode_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> JournalCheckpoint {
        JournalCheckpoint {
            seq: 42,
            epoch: 7,
            state: FaultState::with_faults(10, FaultSet::from_edges([1, 4, 9])).unwrap(),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"\x00"), 0xd202_ef8d);
    }

    #[test]
    fn event_and_checkpoint_round_trip() {
        let mut bytes = Vec::new();
        let frames = vec![
            JournalFrame::Event(FaultEvent::Arrive(1)),
            JournalFrame::Checkpoint(sample_checkpoint()),
            JournalFrame::Event(FaultEvent::Repair(1)),
        ];
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let decoded = decode_journal(&bytes).unwrap();
        assert_eq!(decoded.frames, frames);
        assert_eq!(decoded.tail, JournalTail::Clean);
    }

    #[test]
    fn empty_stream_is_clean() {
        let decoded = decode_journal(&[]).unwrap();
        assert!(decoded.frames.is_empty());
        assert_eq!(decoded.tail, JournalTail::Clean);
    }

    #[test]
    fn every_truncation_is_torn_never_an_error() {
        let mut bytes = Vec::new();
        JournalFrame::Event(FaultEvent::Arrive(5)).encode_into(&mut bytes);
        JournalFrame::Checkpoint(sample_checkpoint()).encode_into(&mut bytes);
        let first_frame_len = 4 + 1 + WIRE_EVENT_LEN + 4;
        for cut in 0..bytes.len() {
            let decoded = decode_journal(&bytes[..cut]).expect("truncation is never an error");
            match cut.cmp(&first_frame_len) {
                std::cmp::Ordering::Less => {
                    assert!(decoded.frames.is_empty(), "cut {cut}");
                    if cut == 0 {
                        assert_eq!(decoded.tail, JournalTail::Clean);
                    } else {
                        assert_eq!(decoded.tail, JournalTail::Torn { offset: 0 }, "cut {cut}");
                    }
                }
                _ => {
                    assert_eq!(decoded.frames.len(), 1, "cut {cut}");
                    if cut == first_frame_len {
                        assert_eq!(decoded.tail, JournalTail::Clean);
                    } else {
                        assert_eq!(
                            decoded.tail,
                            JournalTail::Torn { offset: first_frame_len },
                            "cut {cut}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interior_bit_flip_is_bad_crc() {
        let mut bytes = Vec::new();
        JournalFrame::Event(FaultEvent::Arrive(5)).encode_into(&mut bytes);
        JournalFrame::Event(FaultEvent::Repair(5)).encode_into(&mut bytes);
        let frame_len = bytes.len() / 2;
        // Flip every bit position of the first frame in turn: all are
        // caught, either by the CRC or (length-prefix flips) by the
        // declared frame no longer fitting (torn) or growing absurd.
        for bit in 0..frame_len * 8 {
            let mut mutated = bytes.clone();
            mutated[bit / 8] ^= 1 << (bit % 8);
            match decode_journal(&mutated) {
                Err(_) => {}
                Ok(decoded) => {
                    // A length-prefix flip can only tear the stream; the
                    // mutated frame must never decode as a frame.
                    assert!(
                        matches!(decoded.tail, JournalTail::Torn { offset: 0 }),
                        "bit {bit} slipped through: {decoded:?}"
                    );
                    assert!(decoded.frames.is_empty(), "bit {bit} forged a frame");
                }
            }
        }
    }

    #[test]
    fn unknown_kind_and_empty_payload_are_typed() {
        // Hand-build a frame with kind 0x7f.
        let payload = [0x7fu8, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_journal(&bytes),
            Err(JournalDecodeError::BadKind { offset: 0, kind: 0x7f })
        );

        let mut empty = 0u32.to_le_bytes().to_vec();
        let crc = crc32(&empty);
        empty.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_journal(&empty), Err(JournalDecodeError::EmptyFrame { offset: 0 }));
    }

    #[test]
    fn absurd_length_is_frame_too_long() {
        let bytes = u32::MAX.to_le_bytes();
        assert_eq!(
            decode_journal(&bytes),
            Err(JournalDecodeError::FrameTooLong { offset: 0, len: u32::MAX as usize })
        );
    }

    #[test]
    fn checkpoint_validation_is_typed() {
        // Helper to frame an arbitrary checkpoint body with a good CRC.
        let frame = |body: &[u8]| -> Vec<u8> {
            let mut payload = vec![KIND_CHECKPOINT];
            payload.extend_from_slice(body);
            let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
            bytes.extend_from_slice(&payload);
            let crc = crc32(&bytes);
            bytes.extend_from_slice(&crc.to_le_bytes());
            bytes
        };

        // k > m.
        let mut body = Vec::new();
        body.extend_from_slice(&0u64.to_le_bytes()); // seq
        body.extend_from_slice(&0u64.to_le_bytes()); // epoch
        body.extend_from_slice(&2u64.to_le_bytes()); // m
        body.extend_from_slice(&3u64.to_le_bytes()); // k
        assert_eq!(
            decode_journal(&frame(&body)),
            Err(JournalDecodeError::BadCheckpoint {
                offset: 0,
                source: CheckpointDecodeError::TooManyFaults { k: 3, m: 2 },
            })
        );

        // Edge out of range.
        let mut body = Vec::new();
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&4u64.to_le_bytes()); // m = 4
        body.extend_from_slice(&1u64.to_le_bytes()); // k = 1
        body.extend_from_slice(&9u64.to_le_bytes()); // edge 9 >= 4
        assert_eq!(
            decode_journal(&frame(&body)),
            Err(JournalDecodeError::BadCheckpoint {
                offset: 0,
                source: CheckpointDecodeError::EdgeOutOfRange { edge: 9, m: 4 },
            })
        );

        // Not strictly increasing.
        let mut body = Vec::new();
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&4u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        body.extend_from_slice(&2u64.to_le_bytes());
        assert_eq!(
            decode_journal(&frame(&body)),
            Err(JournalDecodeError::BadCheckpoint {
                offset: 0,
                source: CheckpointDecodeError::NotStrictlyIncreasing { index: 1 },
            })
        );

        // Truncated body.
        let body = [0u8; 16];
        assert_eq!(
            decode_journal(&frame(&body)),
            Err(JournalDecodeError::BadCheckpoint {
                offset: 0,
                source: CheckpointDecodeError::Truncated { got: 16, need: 32 },
            })
        );
    }

    #[test]
    fn error_offsets_point_at_the_bad_frame() {
        let mut bytes = Vec::new();
        JournalFrame::Event(FaultEvent::Arrive(5)).encode_into(&mut bytes);
        let second = bytes.len();
        JournalFrame::Event(FaultEvent::Repair(5)).encode_into(&mut bytes);
        bytes[second + 6] ^= 0xff;
        assert_eq!(decode_journal(&bytes), Err(JournalDecodeError::BadCrc { offset: second }));
    }
}
