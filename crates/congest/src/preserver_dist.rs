//! Lemma 36 and Corollary 9(1): distributed fault-tolerant preservers and
//! +4 additive spanners, plus the Theorem 8 round formulas for the
//! higher-fault constructions.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rsp_core::RandomGridAtw;
use rsp_graph::{EdgeId, Graph, Vertex};

use crate::scheduler::scheduled_multi_spt;
use crate::sim::RunStats;

/// An edge set computed by a distributed algorithm, with its run
/// statistics.
#[derive(Clone, Debug)]
pub struct DistributedEdgeSet {
    /// Edge ids (in the host graph), sorted.
    pub edges: Vec<EdgeId>,
    /// Round/message statistics, including setup rounds.
    pub stats: RunStats,
}

impl DistributedEdgeSet {
    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }
}

/// **Lemma 36 / Theorem 8(1)**: a 1-FT `S × S` preserver with `O(|S|·n)`
/// edges in `Õ(D + |S|)` rounds.
///
/// Protocol: (round 0) every vertex samples the restorable tiebreaking
/// weights of its incident edges and exchanges them with the other
/// endpoints — modeled by seeding the shared [`RandomGridAtw`] and charged
/// one round; then the `σ` source SPTs run concurrently under the
/// random-delay scheduler; the preserver is the union of tree edges, known
/// edge-locally (each vertex knows its parent edge per instance).
///
/// 1-restorability of the weight function is the entire correctness
/// argument: for any failing edge, some `π(s, x) ∪ π(t, x)` is a
/// replacement path, and both halves are tree paths of the overlay.
///
/// # Errors
///
/// Propagates [`crate::CongestionError`] (indicates a bug, not an input
/// condition).
pub fn distributed_1ft_subset_preserver(
    g: &Graph,
    sources: &[Vertex],
    seed: u64,
) -> Result<DistributedEdgeSet, crate::CongestionError> {
    let scheme = RandomGridAtw::theorem20(g, seed).into_scheme();
    let multi = scheduled_multi_spt(g, &scheme, sources, seed ^ 0xA5A5_5A5A)?;
    let mut stats = multi.stats;
    stats.rounds += 1; // the local weight-sampling exchange
    Ok(DistributedEdgeSet { edges: multi.tree_edges, stats })
}

/// **Corollary 9(1)**: a distributed 1-FT +4 additive spanner.
///
/// Protocol: centers are sampled from shared randomness (free in the
/// model); one round lets every vertex learn which neighbors are centers;
/// clustering is then a purely local decision (keep 2 center edges if
/// ≥ 2 center neighbors, else keep all incident edges); finally the
/// distributed 1-FT `C × C` preserver of Lemma 36 is unioned in.
///
/// # Errors
///
/// Propagates [`crate::CongestionError`].
///
/// # Panics
///
/// Panics if `sigma` is zero or exceeds `n`.
pub fn distributed_ft_spanner(
    g: &Graph,
    sigma: usize,
    seed: u64,
) -> Result<DistributedEdgeSet, crate::CongestionError> {
    assert!(sigma >= 1 && sigma <= g.n(), "need 1 <= sigma <= n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<Vertex> = g.vertices().collect();
    perm.shuffle(&mut rng);
    let mut centers: Vec<Vertex> = perm.into_iter().take(sigma).collect();
    centers.sort_unstable();
    let mut is_center = vec![false; g.n()];
    for &c in &centers {
        is_center[c] = true;
    }

    // Local clustering (f = 1 ⇒ keep f + 1 = 2 center edges).
    let mut keep = vec![false; g.m()];
    for v in g.vertices() {
        let center_edges: Vec<EdgeId> =
            g.neighbors(v).filter(|&(u, _)| is_center[u]).map(|(_, e)| e).collect();
        if center_edges.len() >= 2 {
            for &e in center_edges.iter().take(2) {
                keep[e] = true;
            }
        } else {
            for (_, e) in g.neighbors(v) {
                keep[e] = true;
            }
        }
    }

    let preserver = distributed_1ft_subset_preserver(g, &centers, seed ^ 0x0F0F_F0F0)?;
    for &e in &preserver.edges {
        keep[e] = true;
    }
    let edges: Vec<EdgeId> = (0..g.m()).filter(|&e| keep[e]).collect();
    let mut stats = preserver.stats;
    stats.rounds += 1; // the center-announcement round
    Ok(DistributedEdgeSet { edges, stats })
}

/// The fully accounted Lemma 36 protocol: every round is paid for by an
/// actual message-passing phase.
///
/// 1. the shared seed is **broadcast** from vertex 0 (`O(D)` rounds —
///    the paper's "shared seed of `O(log² n)` bits");
/// 2. weights are sampled locally and exchanged (1 round);
/// 3. the `σ` scheduled SPTs run (`Õ(D + σ)` rounds);
/// 4. the preserver size is aggregated by **convergecast** and the total
///    broadcast back (`O(D)` rounds) so every vertex knows it.
///
/// Returns the edge set, the verified global edge count, and the summed
/// round total.
///
/// # Errors
///
/// Propagates [`crate::CongestionError`].
///
/// # Panics
///
/// Panics if the graph is disconnected (the convergecast aggregate would
/// be partial).
pub fn distributed_1ft_preserver_full_protocol(
    g: &Graph,
    sources: &[Vertex],
    seed: u64,
) -> Result<(DistributedEdgeSet, u64), crate::CongestionError> {
    // Phase 1: seed broadcast.
    let bcast = crate::broadcast(g, 0, seed)?;
    let shared_seed = bcast.received[0].expect("root knows its own seed");

    // Phases 2–3: sampling + scheduled SPTs.
    let preserver = distributed_1ft_subset_preserver(g, sources, shared_seed)?;

    // Phase 4: per-vertex parent-edge counts, aggregated. Each non-source
    // vertex owns one parent edge per instance; overlaps are global
    // knowledge we charge to the aggregate (counting distinct edges
    // distributedly needs only the per-vertex ownership since every
    // preserver edge is some vertex's parent edge; we aggregate the
    // deduplicated count by letting the edge's lower endpoint own it).
    let mut owned = vec![0u64; g.n()];
    for &e in &preserver.edges {
        let (u, _) = g.endpoints(e);
        owned[u] += 1;
    }
    let agg = crate::convergecast_sum(g, 0, &owned)?;
    let feedback = crate::broadcast(g, 0, agg.total)?;

    let mut stats = preserver.stats;
    stats.rounds += bcast.stats.rounds + agg.stats.rounds + feedback.stats.rounds;
    stats.total_messages +=
        bcast.stats.total_messages + agg.stats.total_messages + feedback.stats.total_messages;
    stats.max_message_bits =
        stats.max_message_bits.max(bcast.stats.max_message_bits).max(agg.stats.max_message_bits);
    let edges = preserver.edges;
    debug_assert_eq!(agg.total as usize, edges.len());
    Ok((DistributedEdgeSet { edges, stats }, agg.total))
}

/// The round bounds of **Theorem 8** (log factors dropped), for the
/// constructions whose \[30\]-machinery this reproduction black-boxes (see
/// DESIGN.md substitution 5): `f = 1 → D + σ`, `f = 2 → D + √(σn)`,
/// `f = 3 → D + n^{7/8}σ^{1/8} + σ^{5/4}n^{3/4}`.
///
/// # Panics
///
/// Panics if `f` is not in `1..=3`.
pub fn theorem8_round_bound(n: usize, diameter: usize, sigma: usize, f: usize) -> f64 {
    let (n, d, s) = (n as f64, diameter as f64, sigma as f64);
    match f {
        1 => d + s,
        2 => d + (s * n).sqrt(),
        3 => d + n.powf(7.0 / 8.0) * s.powf(1.0 / 8.0) + s.powf(5.0 / 4.0) * n.powf(3.0 / 4.0),
        _ => panic!("Theorem 8 covers f in 1..=3, got {f}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::{bfs, diameter, generators, FaultSet};

    /// Checks that an edge set is a 1-FT S × S preserver by brute force.
    fn assert_1ft_subset_preserver(g: &Graph, edges: &[EdgeId], sources: &[Vertex]) {
        let h = g.edge_subgraph(edges.iter().copied());
        for (e, u, v) in g.edges() {
            let gf = FaultSet::single(e);
            let hf: FaultSet = h.edge_between(u, v).into_iter().collect();
            for &s in sources {
                let truth = bfs(g, s, &gf);
                let ours = bfs(&h, s, &hf);
                for &t in sources {
                    assert_eq!(truth.dist(t), ours.dist(t), "pair ({s},{t}) fault {e}");
                }
            }
        }
    }

    #[test]
    fn lemma36_is_a_true_preserver() {
        let g = generators::connected_gnm(24, 55, 3);
        let sources = [0, 8, 16];
        let result = distributed_1ft_subset_preserver(&g, &sources, 5).unwrap();
        assert!(result.edge_count() <= sources.len() * (g.n() - 1));
        assert_1ft_subset_preserver(&g, &result.edges, &sources);
    }

    #[test]
    fn lemma36_round_complexity_additive() {
        let g = generators::torus(6, 6);
        let sources: Vec<Vertex> = (0..6).map(|i| i * 5).collect();
        let result = distributed_1ft_subset_preserver(&g, &sources, 7).unwrap();
        let d = diameter(&g) as usize;
        assert!(
            result.stats.rounds < sources.len() * (d + 3),
            "Õ(D + σ) should beat sequential σ·D"
        );
    }

    #[test]
    fn spanner_has_plus4_stretch_under_single_faults() {
        let g = generators::connected_gnm(22, 60, 9);
        let sp = distributed_ft_spanner(&g, 5, 11).unwrap();
        let h = g.edge_subgraph(sp.edges.iter().copied());
        for (e, u, v) in g.edges() {
            let gf = FaultSet::single(e);
            let hf: FaultSet = h.edge_between(u, v).into_iter().collect();
            for s in g.vertices() {
                let truth = bfs(&g, s, &gf);
                let ours = bfs(&h, s, &hf);
                for t in g.vertices() {
                    match (truth.dist(t), ours.dist(t)) {
                        (Some(a), Some(b)) => assert!(b <= a + 4, "({s},{t}) fault {e}"),
                        (None, None) => {}
                        other => panic!("connectivity mismatch {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn spanner_sparsifies_dense_graphs() {
        let n = 50;
        let g = generators::connected_gnm(n, n * (n - 1) / 4, 2);
        let sp = distributed_ft_spanner(&g, 7, 3).unwrap();
        assert!(sp.edge_count() < g.m());
    }

    #[test]
    fn full_protocol_accounts_every_phase() {
        let g = generators::torus(5, 5);
        let sources = [0, 6, 12, 18];
        let (result, counted) = distributed_1ft_preserver_full_protocol(&g, &sources, 3).unwrap();
        assert_eq!(counted as usize, result.edge_count());
        // Full protocol costs strictly more rounds than the bare one
        // (seed broadcast + aggregation), but still O(D + sigma).
        let bare = distributed_1ft_subset_preserver(&g, &sources, 3).unwrap();
        assert!(result.stats.rounds > bare.stats.rounds);
        let d = diameter(&g) as usize;
        assert!(result.stats.rounds <= bare.stats.rounds + 3 * (d + 3) + 3);
        // Same edge set either way (same shared seed).
        assert_eq!(result.edges, bare.edges);
    }

    #[test]
    fn round_formulas() {
        assert_eq!(theorem8_round_bound(100, 10, 5, 1), 15.0);
        let two = theorem8_round_bound(100, 10, 4, 2);
        assert!((two - 30.0).abs() < 1e-9, "10 + sqrt(400) = 30, got {two}");
        assert!(theorem8_round_bound(100, 10, 4, 3) > two);
    }

    #[test]
    #[should_panic(expected = "covers f in 1..=3")]
    fn round_formula_rejects_f4() {
        let _ = theorem8_round_bound(10, 1, 1, 4);
    }
}
