//! Distributed construction in the CONGEST simulator (Section 4.5):
//! build a 1-FT subset preserver and a +4 spanner with message-passing
//! node programs, and watch the round/congestion accounting.
//!
//! ```text
//! cargo run --example distributed_preserver
//! ```

use restorable_tiebreaking::congest::{
    distributed_1ft_subset_preserver, distributed_ft_spanner, distributed_spt, theorem8_round_bound,
};
use restorable_tiebreaking::core::RandomGridAtw;
use restorable_tiebreaking::graph::{diameter, generators};

fn main() {
    let g = generators::torus(8, 8);
    let d = diameter(&g);
    println!("network: 8x8 torus, n = {}, m = {}, D = {d}\n", g.n(), g.m());

    // Lemma 34: one tie-breaking SPT in O(D) rounds, O(1) msgs/edge.
    let scheme = RandomGridAtw::corollary22(&g, 1, 1, 5).into_scheme();
    let spt = distributed_spt(&g, &scheme, 0).expect("protocol obeys CONGEST quota");
    println!(
        "Lemma 34 SPT from node 0: {} rounds (D = {d}), max {} msgs/edge, {} bit messages",
        spt.stats.rounds, spt.stats.max_messages_per_edge, spt.stats.max_message_bits,
    );

    // Lemma 36: the 1-FT S x S preserver, distributedly.
    let sources: Vec<usize> = (0..8).map(|i| i * 8).collect();
    let p = distributed_1ft_subset_preserver(&g, &sources, 11).expect("quota obeyed");
    println!(
        "\nLemma 36 preserver over {} sources: {} rounds, {} edges (bound |S|n = {})",
        sources.len(),
        p.stats.rounds,
        p.edge_count(),
        sources.len() * g.n(),
    );

    // Corollary 9(1): the distributed 1-FT +4 spanner.
    let sp = distributed_ft_spanner(&g, 8, 13).expect("quota obeyed");
    println!(
        "Cor 9(1) +4 spanner: {} rounds, {} edges of {} (x{:.2} sparsification)",
        sp.stats.rounds,
        sp.edge_count(),
        g.m(),
        g.m() as f64 / sp.edge_count() as f64,
    );

    // The black-boxed higher-fault round bounds (Theorem 8).
    println!("\nTheorem 8 round bounds at this scale (log factors dropped):");
    for f in 1..=3 {
        println!(
            "  {f}-FT S x S preserver: ~{:.0} rounds",
            theorem8_round_bound(g.n(), d as usize, sources.len(), f)
        );
    }
}
