//! The paper's future-work direction, live: does restorable tiebreaking
//! extend to unweighted DAGs?
//!
//! Section 1.2 conjectures it "seems very plausible". This example builds
//! canonical perturbed shortest paths on tie-rich and random DAGs and
//! measures restoration by (oriented) concatenation on every
//! `(s, t, failing arc)` instance, alongside the known-true existential
//! restoration lemma.
//!
//! ```text
//! cargo run --release --example dag_extension
//! ```

use restorable_tiebreaking::dag::{
    dag_restoration_stats, existential_restoration_stats, generators, DagScheme,
};

fn main() {
    println!("The DAG extension (Bodwin-Parter Sec 1.2, future work), measured:\n");
    let cases = vec![
        ("directed grid 5x5".to_string(), generators::grid_dag(5, 5)),
        ("directed grid 3x8".to_string(), generators::grid_dag(3, 8)),
        ("layered DAG 6x4".to_string(), generators::layered_dag(6, 4, 2, 7)),
        ("random DAG n=24".to_string(), generators::random_dag(24, 40, 3)),
        ("random DAG n=30".to_string(), generators::random_dag(30, 55, 4)),
    ];
    let mut total_instances = 0;
    let mut total_failures = 0;
    for (name, d) in cases {
        let scheme = DagScheme::new(&d, 42);
        let canonical = dag_restoration_stats(&scheme);
        let existential = existential_restoration_stats(&scheme);
        println!(
            "{name:22} n={:<3} m={:<3} instances={:<4} canonical fails={} existential fails={}",
            d.n(),
            d.m(),
            canonical.attempted,
            canonical.failed,
            existential.failed,
        );
        assert_eq!(existential.failed, 0, "the existential DAG lemma is a theorem");
        total_instances += canonical.attempted;
        total_failures += canonical.failed;
    }
    println!(
        "\nacross {total_instances} instances: {total_failures} canonical restoration failures."
    );
    println!(
        "Every instance measured so far restores from canonical perturbed paths —\n\
         empirical support for the conjecture that Theorem 2 extends to DAGs."
    );
}
