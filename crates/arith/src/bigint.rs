//! A compact arbitrary-precision signed integer.
//!
//! The deterministic tiebreaking weight function of Theorem 23 assigns edge
//! `i` the weight `sign(u−v) · C^{−i} / (2n)`. After clearing denominators
//! (multiplying through by `2n·C^{|E|}`), an edge weight becomes the exact
//! integer `2n·C^{|E|} ± C^{|E|−i}`, which for `C = 4` needs roughly
//! `2·|E|` bits. Path weights are sums of at most `n − 1` such integers.
//! [`BigInt`] supports exactly the operations that the exact-weight Dijkstra
//! needs: addition, subtraction, comparison, shifts, multiplication by a
//! machine word, and decimal formatting for diagnostics.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Shl, Sub};

/// Sign of a [`BigInt`]: `-1`, `0`, or `+1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

/// An arbitrary-precision signed integer.
///
/// The representation is a sign plus a little-endian base-2⁶⁴ magnitude with
/// no trailing zero limbs; zero is represented by an empty magnitude. All
/// operations are exact; none allocate beyond the obvious output size.
///
/// # Examples
///
/// ```
/// use rsp_arith::BigInt;
///
/// let x = BigInt::pow2(100) * 3u64; // 3·2^100
/// let y = BigInt::pow2(100);
/// assert_eq!(x - y, BigInt::pow2(101));
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian limbs; invariant: no trailing zeros, empty iff sign is Zero.
    mag: Vec<u64>,
}

impl Clone for BigInt {
    fn clone(&self) -> Self {
        BigInt { sign: self.sign, mag: self.mag.clone() }
    }

    /// Clones into existing storage, reusing `self`'s limb buffer.
    fn clone_from(&mut self, source: &Self) {
        self.sign = source.sign;
        self.mag.clone_from(&source.mag);
    }
}

impl BigInt {
    /// Returns zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arith::BigInt;
    /// assert!(BigInt::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: Vec::new() }
    }

    /// Returns one.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arith::BigInt;
    /// assert_eq!(BigInt::one(), BigInt::from_i128(1));
    /// ```
    pub fn one() -> Self {
        BigInt { sign: Sign::Plus, mag: vec![1] }
    }

    /// Returns `2^k`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arith::BigInt;
    /// assert_eq!(BigInt::pow2(3), BigInt::from_i128(8));
    /// assert_eq!(BigInt::pow2(64), BigInt::from_i128(1) << 64);
    /// ```
    pub fn pow2(k: u32) -> Self {
        BigInt::one() << k as usize
    }

    /// Builds a [`BigInt`] from a native signed integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arith::BigInt;
    /// assert_eq!(BigInt::from_i128(-5).to_string(), "-5");
    /// ```
    pub fn from_i128(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt { sign: Sign::Plus, mag: Self::mag_from_u128(v as u128) },
            Ordering::Less => {
                BigInt { sign: Sign::Minus, mag: Self::mag_from_u128(v.unsigned_abs()) }
            }
        }
    }

    /// Builds a [`BigInt`] from a native unsigned integer.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arith::BigInt;
    /// assert_eq!(BigInt::from_u128(u128::MAX) + BigInt::one(), BigInt::pow2(128));
    /// ```
    pub fn from_u128(v: u128) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt { sign: Sign::Plus, mag: Self::mag_from_u128(v) }
        }
    }

    fn mag_from_u128(v: u128) -> Vec<u64> {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        if hi == 0 {
            vec![lo]
        } else {
            vec![lo, hi]
        }
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns the number of bits in the magnitude (`0` for zero).
    ///
    /// This is the quantity reported by the bit-complexity experiment (E10):
    /// the paper's Theorem 23 promises `O(|E|)` bits per weight.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arith::BigInt;
    /// assert_eq!(BigInt::from_i128(5).bits(), 3);
    /// assert_eq!(BigInt::zero().bits(), 0);
    /// ```
    pub fn bits(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(top) => 64 * (self.mag.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Converts to `i128` if the value fits.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arith::BigInt;
    /// assert_eq!(BigInt::from_i128(-42).to_i128(), Some(-42));
    /// assert_eq!(BigInt::pow2(200).to_i128(), None);
    /// ```
    pub fn to_i128(&self) -> Option<i128> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, limb) in self.mag.iter().enumerate() {
            v |= (*limb as u128) << (64 * i);
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => {
                if v <= i128::MAX as u128 {
                    Some(v as i128)
                } else {
                    None
                }
            }
            Sign::Minus => {
                if v <= i128::MAX as u128 + 1 {
                    Some((v as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    fn trim(mag: &mut Vec<u64>) {
        while mag.last() == Some(&0) {
            mag.pop();
        }
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i];
            let y = if i < short.len() { short[i] } else { 0 };
            let (s1, c1) = x.overflowing_add(y);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Subtracts magnitudes; requires `a >= b`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let y = if i < b.len() { b[i] } else { 0 };
            let (d1, b1) = a[i].overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Self::trim(&mut out);
        out
    }

    /// In-place `out = a + b` over magnitudes, reusing `out`'s capacity.
    fn add_mag_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        out.clear();
        out.reserve(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i];
            let y = if i < short.len() { short[i] } else { 0 };
            let (s1, c1) = x.overflowing_add(y);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
    }

    /// In-place `out = a - b` over magnitudes (requires `a >= b`), reusing
    /// `out`'s capacity.
    fn sub_mag_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        out.clear();
        out.reserve(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let y = if i < b.len() { b[i] } else { 0 };
            let (d1, b1) = a[i].overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Self::trim(out);
    }

    /// Writes `a + b` into `out`, reusing `out`'s limb buffer.
    ///
    /// This is the allocation-free hot path behind
    /// [`rsp_arith::PathCost::add_into`](crate::PathCost::add_into): once a
    /// buffer has grown to the working operand width, repeated relaxations
    /// stop allocating entirely.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arith::BigInt;
    /// let mut out = BigInt::zero();
    /// BigInt::sum_into(&BigInt::pow2(100), &BigInt::pow2(100), &mut out);
    /// assert_eq!(out, BigInt::pow2(101));
    /// ```
    pub fn sum_into(a: &BigInt, b: &BigInt, out: &mut BigInt) {
        use Sign::*;
        match (a.sign, b.sign) {
            (Zero, _) => out.clone_from(b),
            (_, Zero) => out.clone_from(a),
            (sa, sb) if sa == sb => {
                Self::add_mag_into(&a.mag, &b.mag, &mut out.mag);
                out.sign = sa;
            }
            _ => match Self::cmp_mag(&a.mag, &b.mag) {
                Ordering::Equal => out.clear_to_zero(),
                Ordering::Greater => {
                    Self::sub_mag_into(&a.mag, &b.mag, &mut out.mag);
                    out.sign = if out.mag.is_empty() { Zero } else { a.sign };
                }
                Ordering::Less => {
                    Self::sub_mag_into(&b.mag, &a.mag, &mut out.mag);
                    out.sign = if out.mag.is_empty() { Zero } else { b.sign };
                }
            },
        }
    }

    /// Resets the value to zero in place, keeping the limb buffer's capacity.
    pub fn clear_to_zero(&mut self) {
        self.sign = Sign::Zero;
        self.mag.clear();
    }

    fn from_sign_mag(sign: Sign, mag: Vec<u64>) -> Self {
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// Divides in place by a nonzero `u64`, returning the remainder.
    /// Only used for decimal formatting; operates on the magnitude.
    fn div_rem_u64_mag(mag: &mut Vec<u64>, d: u64) -> u64 {
        debug_assert!(d != 0);
        let mut rem: u128 = 0;
        for limb in mag.iter_mut().rev() {
            let cur = (rem << 64) | *limb as u128;
            *limb = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        Self::trim(mag);
        rem as u64
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Zero, Zero) => Ordering::Equal,
            (Zero, Plus) | (Minus, Zero) | (Minus, Plus) => Ordering::Less,
            (Zero, Minus) | (Plus, Zero) | (Plus, Minus) => Ordering::Greater,
            (Plus, Plus) => Self::cmp_mag(&self.mag, &other.mag),
            (Minus, Minus) => Self::cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for BigInt {
    type Output = BigInt;

    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl Add for &BigInt {
    type Output = BigInt;

    fn add(self, rhs: &BigInt) -> BigInt {
        use Sign::*;
        match (self.sign, rhs.sign) {
            (Zero, _) => rhs.clone(),
            (_, Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, BigInt::add_mag(&self.mag, &rhs.mag)),
            _ => match BigInt::cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_sign_mag(self.sign, BigInt::sub_mag(&self.mag, &rhs.mag))
                }
                Ordering::Less => {
                    BigInt::from_sign_mag(rhs.sign, BigInt::sub_mag(&rhs.mag, &self.mag))
                }
            },
        }
    }
}

impl AddAssign for BigInt {
    fn add_assign(&mut self, rhs: BigInt) {
        *self = &*self + &rhs;
    }
}

impl Sub for BigInt {
    type Output = BigInt;

    fn sub(self, rhs: BigInt) -> BigInt {
        &self + &(-rhs)
    }
}

impl Neg for BigInt {
    type Output = BigInt;

    fn neg(mut self) -> BigInt {
        self.sign = match self.sign {
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        };
        self
    }
}

impl Shl<usize> for BigInt {
    type Output = BigInt;

    /// Shifts the magnitude left by `bits`; the sign is unchanged.
    fn shl(self, bits: usize) -> BigInt {
        if self.is_zero() || bits == 0 {
            return self;
        }
        let limbs = bits / 64;
        let rem = bits % 64;
        let mut mag = vec![0u64; limbs];
        if rem == 0 {
            mag.extend_from_slice(&self.mag);
        } else {
            let mut carry = 0u64;
            for &limb in &self.mag {
                mag.push((limb << rem) | carry);
                carry = limb >> (64 - rem);
            }
            if carry != 0 {
                mag.push(carry);
            }
        }
        BigInt { sign: self.sign, mag }
    }
}

impl std::ops::Mul<u64> for BigInt {
    type Output = BigInt;

    fn mul(self, rhs: u64) -> BigInt {
        if self.is_zero() || rhs == 0 {
            return BigInt::zero();
        }
        let mut mag = Vec::with_capacity(self.mag.len() + 1);
        let mut carry: u128 = 0;
        for &limb in &self.mag {
            let prod = limb as u128 * rhs as u128 + carry;
            mag.push(prod as u64);
            carry = prod >> 64;
        }
        if carry != 0 {
            mag.push(carry as u64);
        }
        BigInt { sign: self.sign, mag }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.mag.clone();
        while !mag.is_empty() {
            let chunk = Self::div_rem_u64_mag(&mut mag, 10_000_000_000_000_000_000);
            digits.push(chunk);
        }
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        let mut iter = digits.iter().rev();
        if let Some(first) = iter.next() {
            write!(f, "{first}")?;
        }
        for chunk in iter {
            write!(f, "{chunk:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_i128(v as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_identity() {
        let z = BigInt::zero();
        assert!(z.is_zero());
        assert_eq!(&z + &BigInt::from_i128(7), BigInt::from_i128(7));
        assert_eq!(z.to_string(), "0");
        assert_eq!(z.bits(), 0);
    }

    #[test]
    fn add_sub_small() {
        for a in [-5i128, -1, 0, 1, 3, 100] {
            for b in [-7i128, -2, 0, 2, 50] {
                let got = BigInt::from_i128(a) + BigInt::from_i128(b);
                assert_eq!(got, BigInt::from_i128(a + b), "{a} + {b}");
                let got = BigInt::from_i128(a) - BigInt::from_i128(b);
                assert_eq!(got, BigInt::from_i128(a - b), "{a} - {b}");
            }
        }
    }

    #[test]
    fn carry_across_limbs() {
        let a = BigInt::from_u128(u128::MAX);
        let one = BigInt::one();
        let sum = &a + &one;
        assert_eq!(sum, BigInt::pow2(128));
        assert_eq!(sum - a, one);
    }

    #[test]
    fn ordering_matches_i128() {
        let vals = [-1000i128, -1, 0, 1, 65, 1 << 70, -(1 << 90)];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    BigInt::from_i128(a).cmp(&BigInt::from_i128(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn shifts() {
        assert_eq!(BigInt::from_i128(3) << 2, BigInt::from_i128(12));
        assert_eq!(BigInt::from_i128(-1) << 64, BigInt::from_i128(-(1i128 << 64)));
        assert_eq!((BigInt::one() << 130).bits(), 131);
    }

    #[test]
    fn mul_u64() {
        assert_eq!(BigInt::from_i128(7) * 6u64, BigInt::from_i128(42));
        assert_eq!(BigInt::from_i128(-7) * 6u64, BigInt::from_i128(-42));
        let big = BigInt::from_u128(u128::MAX) * 2u64;
        assert_eq!(big, BigInt::pow2(129) - BigInt::from_i128(2));
    }

    #[test]
    fn display_round_trip_via_i128() {
        for v in [0i128, 1, -1, 42, -9_999_999_999_999_999_999, i128::MAX, i128::MIN + 1] {
            assert_eq!(BigInt::from_i128(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn display_large() {
        // 2^128 = 340282366920938463463374607431768211456
        assert_eq!(BigInt::pow2(128).to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn to_i128_round_trip() {
        for v in [0i128, 5, -5, i128::MAX, i128::MIN + 1] {
            assert_eq!(BigInt::from_i128(v).to_i128(), Some(v));
        }
        assert_eq!(BigInt::pow2(127).to_i128(), None);
        assert_eq!((-BigInt::pow2(127)).to_i128(), Some(i128::MIN));
    }

    #[test]
    fn sum_into_matches_operator_all_sign_shapes() {
        let vals = [-300i128, -5, -1, 0, 1, 5, 300, 1 << 90, -(1 << 90)];
        let mut out = BigInt::zero();
        for &a in &vals {
            for &b in &vals {
                let (ba, bb) = (BigInt::from_i128(a), BigInt::from_i128(b));
                BigInt::sum_into(&ba, &bb, &mut out);
                assert_eq!(out, BigInt::from_i128(a + b), "{a} + {b}");
            }
        }
    }

    #[test]
    fn sum_into_reuses_buffer_without_reallocating() {
        let a = BigInt::pow2(1000);
        let b = BigInt::pow2(999);
        let mut out = BigInt::zero();
        BigInt::sum_into(&a, &b, &mut out);
        let cap = out.mag.capacity();
        for _ in 0..16 {
            BigInt::sum_into(&a, &b, &mut out);
        }
        assert_eq!(out.mag.capacity(), cap, "warm buffer must not regrow");
        assert_eq!(out, &a + &b);
    }

    #[test]
    fn sum_into_carry_and_cancellation() {
        let mut out = BigInt::pow2(3); // nonzero garbage to overwrite
        BigInt::sum_into(&BigInt::from_u128(u128::MAX), &BigInt::one(), &mut out);
        assert_eq!(out, BigInt::pow2(128));
        BigInt::sum_into(&BigInt::pow2(128), &-BigInt::pow2(128), &mut out);
        assert!(out.is_zero());
    }

    #[test]
    fn clear_to_zero_keeps_capacity() {
        let mut x = BigInt::pow2(512);
        let cap = x.mag.capacity();
        x.clear_to_zero();
        assert!(x.is_zero());
        assert_eq!(x.mag.capacity(), cap);
    }

    #[test]
    fn clone_from_reuses_storage() {
        let big = BigInt::pow2(640);
        let mut slot = BigInt::pow2(700);
        let cap = slot.mag.capacity();
        slot.clone_from(&big);
        assert_eq!(slot, big);
        assert!(slot.mag.capacity() >= cap - 1, "clone_from must not shrink-reallocate");
    }

    #[test]
    fn geometric_weight_dominance() {
        // The Theorem 23 argument: C^{-i} must dominate the sum of all
        // smaller weights. With C = 4 and m edges, check that
        // 4^{m-i} > 2 * sum_{j>i} 4^{m-j} exactly.
        let m = 40u32;
        for i in 0..m {
            let big = BigInt::pow2(2 * (m - i));
            let mut tail = BigInt::zero();
            for j in (i + 1)..=m {
                tail += BigInt::pow2(2 * (m - j)) * 2u64;
            }
            assert!(big > tail, "i={i}");
        }
    }
}
