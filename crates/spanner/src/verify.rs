//! Ground-truth verification of additive stretch under faults.

use std::error::Error;
use std::fmt;

use rsp_graph::{bfs, FaultSet, Graph, Vertex};

use crate::clustering::Spanner;

/// A pair whose spanner distance exceeds the allowed additive stretch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StretchViolation {
    /// The violated pair.
    pub s: Vertex,
    /// The violated pair.
    pub t: Vertex,
    /// The fault set under which the stretch broke.
    pub faults: FaultSet,
    /// `dist_{G\F}(s, t)`.
    pub graph_dist: Option<u32>,
    /// `dist_{H\F}(s, t)`.
    pub spanner_dist: Option<u32>,
}

impl fmt::Display for StretchViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stretch violation for ({}, {}) under {}: graph {:?}, spanner {:?}",
            self.s, self.t, self.faults, self.graph_dist, self.spanner_dist
        )
    }
}

impl Error for StretchViolation {}

/// Checks `dist_{H\F}(s, t) ≤ dist_{G\F}(s, t) + stretch` for **all**
/// vertex pairs and every fault set in `fault_sets`.
///
/// Pairs disconnected in `G \ F` must also be disconnected in `H \ F`
/// (vacuous, since `H ⊆ G`), and connected pairs must stay connected in
/// the spanner.
///
/// # Errors
///
/// Returns the first [`StretchViolation`] found.
pub fn verify_spanner_stretch(
    g: &Graph,
    spanner: &Spanner,
    stretch: u32,
    fault_sets: &[FaultSet],
) -> Result<(), StretchViolation> {
    let h = spanner.subgraph(g);
    for faults in fault_sets {
        let h_faults: FaultSet = faults
            .iter()
            .filter_map(|e| {
                let (u, v) = g.endpoints(e);
                h.edge_between(u, v)
            })
            .collect();
        for s in g.vertices() {
            let truth = bfs(g, s, faults);
            let ours = bfs(&h, s, &h_faults);
            for t in g.vertices() {
                let ok = match (truth.dist(t), ours.dist(t)) {
                    (None, None) => true,
                    (Some(d), Some(d2)) => d2 <= d + stretch,
                    (None, Some(_)) => false, // impossible: H ⊆ G
                    (Some(_), None) => false, // spanner disconnected the pair
                };
                if !ok {
                    return Err(StretchViolation {
                        s,
                        t,
                        faults: faults.clone(),
                        graph_dist: truth.dist(t),
                        spanner_dist: ours.dist(t),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::ft_additive_spanner;
    use rsp_core::RandomGridAtw;
    use rsp_graph::generators;

    #[test]
    fn fault_free_spanner_distances_bounded() {
        let g = generators::connected_gnm(30, 120, 3);
        let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
        let sp = ft_additive_spanner(&scheme, 6, 1, 4);
        verify_spanner_stretch(&g, &sp, 4, &[FaultSet::empty()]).unwrap();
    }

    #[test]
    fn zero_stretch_fails_when_edges_dropped() {
        // A proper spanner (strictly sparser) cannot have +0 stretch
        // everywhere unless it is a preserver of all pairs; on a dense
        // graph with few centers some pair must stretch.
        let n = 40;
        let g = generators::connected_gnm(n, n * (n - 1) / 3, 5);
        let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
        let sp = ft_additive_spanner(&scheme, 3, 1, 6);
        if sp.edge_count() < g.m() {
            let res = verify_spanner_stretch(&g, &sp, 0, &[FaultSet::empty()]);
            // +0 may occasionally hold by luck; +4 must always hold.
            verify_spanner_stretch(&g, &sp, 4, &[FaultSet::empty()]).unwrap();
            if let Err(v) = res {
                assert!(v.spanner_dist.unwrap() > v.graph_dist.unwrap());
            }
        }
    }

    #[test]
    fn violation_display() {
        let v = StretchViolation {
            s: 0,
            t: 1,
            faults: FaultSet::empty(),
            graph_dist: Some(2),
            spanner_dist: Some(9),
        };
        assert!(v.to_string().contains("stretch violation"));
    }
}
