//! Theorem 35: running many distributed algorithms simultaneously with
//! random start delays.
//!
//! `σ` SPT constructions (one per source) share the network. Each edge
//! forwards at most one tagged message per direction per round — the
//! CONGEST quota — and each node queues overflow per neighbor. Random
//! start delays spread the instances' wavefronts so the queues stay
//! shallow: total time `Õ(D + σ)` instead of the sequential `σ·O(D)`.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_core::ExactScheme;
use rsp_graph::{EdgeId, Graph, Vertex};

use crate::bfs_spt::{weight_tables, SptState};
use crate::sim::{MsgSize, Network, NodeCtx, Outbox, Program, RunStats};

/// An SPT announcement tagged with its instance (source index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaggedMsg {
    /// Which of the `σ` SPT instances this belongs to.
    pub instance: u32,
    /// The announced scaled distance.
    pub dist: u128,
}

impl MsgSize for TaggedMsg {
    fn bits(&self) -> usize {
        let tag = (32 - self.instance.leading_zeros() as usize).max(1);
        let dist = (128 - self.dist.leading_zeros() as usize).max(1);
        tag + dist
    }
}

/// Per-node program running all `σ` instances with per-neighbor FIFO
/// queues enforcing the bandwidth quota.
struct MultiSptProgram {
    instances: Vec<SptState>,
    /// Start delay per instance; only meaningful on that instance's
    /// source node.
    delays: Vec<usize>,
    /// Which instances this node is the source of.
    source_of: Vec<u32>,
    /// Per-neighbor FIFO overflow queues (BTreeMap for deterministic
    /// round-by-round behavior).
    queues: BTreeMap<Vertex, VecDeque<TaggedMsg>>,
}

impl MultiSptProgram {
    fn queued(&self) -> bool {
        self.queues.values().any(|q| !q.is_empty())
    }
}

impl Program<TaggedMsg> for MultiSptProgram {
    fn step(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(Vertex, TaggedMsg)],
        out: &mut Outbox<TaggedMsg>,
    ) {
        // Feed each instance the announcements addressed to it, in
        // instance order for determinism.
        let mut per_instance: BTreeMap<u32, Vec<(Vertex, u128)>> = BTreeMap::new();
        for &(from, msg) in inbox {
            per_instance.entry(msg.instance).or_default().push((from, msg.dist));
        }
        for (instance, msgs) in per_instance {
            let state = &mut self.instances[instance as usize];
            if let Some(dist) = state.on_round(&msgs) {
                for &nb in ctx.neighbors {
                    // Supersede any stale queued announcement of the same
                    // instance: only the newest estimate matters, and this
                    // bounds each queue by σ entries.
                    let q = self.queues.entry(nb).or_default();
                    q.retain(|m| m.instance != instance);
                    q.push_back(TaggedMsg { instance, dist });
                }
            }
        }
        // Delayed source starts.
        for &instance in &self.source_of {
            if ctx.round >= self.delays[instance as usize] {
                let state = &mut self.instances[instance as usize];
                if let Some(dist) = state.on_round(&[]) {
                    for &nb in ctx.neighbors {
                        self.queues.entry(nb).or_default().push_back(TaggedMsg { instance, dist });
                    }
                }
            }
        }
        // Drain one message per neighbor — the CONGEST quota.
        for (&nb, queue) in self.queues.iter_mut() {
            if let Some(msg) = queue.pop_front() {
                out.send(nb, msg);
            }
        }
    }

    fn pending(&self, _round: usize) -> bool {
        self.queued() || self.source_of.iter().any(|&i| !self.instances[i as usize].announced)
    }
}

/// Output of [`scheduled_multi_spt`].
#[derive(Clone, Debug)]
pub struct MultiSptResult {
    /// Per source (in input order): each vertex's parent in that SPT.
    pub parents: Vec<Vec<Option<Vertex>>>,
    /// Union of all tree edge ids.
    pub tree_edges: Vec<EdgeId>,
    /// Round/message statistics.
    pub stats: RunStats,
    /// The sampled start delays.
    pub delays: Vec<usize>,
}

/// Runs `σ = sources.len()` SPT constructions concurrently under random
/// start delays (Theorem 35 applied to Lemma 34's algorithm).
///
/// # Errors
///
/// Propagates [`crate::CongestionError`] (the queueing wrapper never
/// violates the quota; an error indicates a bug).
///
/// # Panics
///
/// Panics if any source repeats or is out of range.
pub fn scheduled_multi_spt(
    g: &Graph,
    scheme: &ExactScheme<u128>,
    sources: &[Vertex],
    seed: u64,
) -> Result<MultiSptResult, crate::CongestionError> {
    let sigma = sources.len();
    let mut seen = vec![false; g.n()];
    for &s in sources {
        assert!(s < g.n(), "source {s} out of range");
        assert!(!seen[s], "duplicate source {s}");
        seen[s] = true;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let delays: Vec<usize> =
        (0..sigma).map(|_| if sigma > 1 { rng.random_range(0..sigma) } else { 0 }).collect();

    let mut tables = weight_tables(g, scheme);
    let programs: Vec<MultiSptProgram> = g
        .vertices()
        .map(|v| {
            let weight_in = std::mem::take(&mut tables[v]);
            let instances: Vec<SptState> = sources
                .iter()
                .map(|&s| {
                    let mut st = if s == v { SptState::source() } else { SptState::node() };
                    st.weight_in = weight_in.clone();
                    st
                })
                .collect();
            let source_of: Vec<u32> = sources
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s == v)
                .map(|(i, _)| i as u32)
                .collect();
            MultiSptProgram {
                instances,
                delays: delays.clone(),
                source_of,
                queues: BTreeMap::new(),
            }
        })
        .collect();

    let mut net = Network::new(g, programs);
    let round_cap = 40 * (g.n() + sigma) + 100;
    let stats = net.run(round_cap)?;
    let programs = net.into_programs();

    let mut parents = vec![vec![None; g.n()]; sigma];
    for (v, prog) in programs.iter().enumerate() {
        for (i, st) in prog.instances.iter().enumerate() {
            parents[i][v] = st.parent;
        }
    }
    let mut tree_edges: Vec<EdgeId> = parents
        .iter()
        .flat_map(|par| {
            par.iter()
                .enumerate()
                .filter_map(|(v, p)| p.map(|u| g.edge_between(u, v).expect("tree edges exist")))
        })
        .collect();
    tree_edges.sort_unstable();
    tree_edges.dedup();
    Ok(MultiSptResult { parents, tree_edges, stats, delays })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_core::RandomGridAtw;
    use rsp_graph::{diameter, generators, FaultSet};

    #[test]
    fn all_instances_match_centralized() {
        let g = generators::connected_gnm(30, 70, 1);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let sources = [0, 7, 14, 21];
        let result = scheduled_multi_spt(&g, &scheme, &sources, 9).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            let central = scheme.spt(s, &FaultSet::empty());
            for v in g.vertices() {
                assert_eq!(
                    result.parents[i][v],
                    central.parent(v).map(|(p, _)| p),
                    "instance {i}, vertex {v}"
                );
            }
        }
    }

    #[test]
    fn rounds_scale_additively_not_multiplicatively() {
        // Õ(D + σ), not σ·D: with σ = 8 sources on a 7×7 torus the run
        // must finish well under the sequential bound.
        let g = generators::torus(7, 7);
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let sources: Vec<_> = (0..8).map(|i| i * 6).collect();
        let result = scheduled_multi_spt(&g, &scheme, &sources, 3).unwrap();
        let d = diameter(&g) as usize;
        let sequential = sources.len() * (d + 3);
        assert!(
            result.stats.rounds < sequential,
            "scheduled {} >= sequential {sequential}",
            result.stats.rounds
        );
    }

    #[test]
    fn single_source_degenerates_to_lemma34() {
        let g = generators::grid(4, 4);
        let scheme = RandomGridAtw::theorem20(&g, 4).into_scheme();
        let multi = scheduled_multi_spt(&g, &scheme, &[0], 5).unwrap();
        let single = crate::distributed_spt(&g, &scheme, 0).unwrap();
        assert_eq!(multi.parents[0], single.parent);
    }

    #[test]
    fn union_edge_bound() {
        let g = generators::connected_gnm(25, 60, 6);
        let scheme = RandomGridAtw::theorem20(&g, 6).into_scheme();
        let sources = [0, 5, 10, 15, 20];
        let result = scheduled_multi_spt(&g, &scheme, &sources, 7).unwrap();
        assert!(result.tree_edges.len() <= sources.len() * (g.n() - 1));
        assert!(result.tree_edges.len() >= g.n() - 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::petersen();
        let scheme = RandomGridAtw::theorem20(&g, 8).into_scheme();
        let a = scheduled_multi_spt(&g, &scheme, &[0, 5], 11).unwrap();
        let b = scheduled_multi_spt(&g, &scheme, &[0, 5], 11).unwrap();
        assert_eq!(a.parents, b.parents);
        assert_eq!(a.delays, b.delays);
    }
}
