//! The delta-vs-rebuild differential battery (ISSUE 8).
//!
//! Contract under test: a delta-enabled pipeline and a rebuild-only
//! pipeline fed the same event stream publish **cell-by-cell identical**
//! snapshots at every epoch; the delta-built cells are pinned against
//! `tree_from_with` and `dijkstra_batch`/`dijkstra_batch_par` (workers
//! 1/2/8) directly; untouched rows are **Arc-pointer shared** with the
//! predecessor (so "delta" can't silently mean "rebuild"); and a flaky
//! delta builder always heals via the full-rebuild fallback with the
//! reason visible in `ChurnHealth`.

use proptest::prelude::*;
use rsp_core::{RandomGridAtw, Rpts};
use rsp_graph::{
    dijkstra_batch_par, generators, tree_edge_child, FaultEvent, FaultSet, FaultState, Graph,
};
use rsp_oracle::churn::inject::{
    flaky_delta_builder, random_trace_with, verify_converged, TraceOptions,
};
use rsp_oracle::churn::{ChurnConfig, ChurnPipeline};
use rsp_oracle::OracleSnapshot;

type Scheme = rsp_core::ExactScheme<u128>;

fn scheme_for(g: &Graph, wseed: u64) -> Scheme {
    RandomGridAtw::theorem20(g, wseed).into_scheme()
}

fn delta_config() -> ChurnConfig {
    ChurnConfig::default()
}

fn rebuild_config() -> ChurnConfig {
    ChurnConfig { delta_enabled: false, ..ChurnConfig::default() }
}

fn silence(pipeline: &mut ChurnPipeline<u128>) {
    pipeline.set_sleeper(|_| {});
}

/// Cell-by-cell snapshot equality: every source row, every vertex,
/// hops + parent pointer + exact cost.
fn assert_cells_identical(g: &Graph, a: &OracleSnapshot<u128>, b: &OracleSnapshot<u128>) {
    assert_eq!(a.base_faults(), b.base_faults(), "base fault sets diverged");
    for s in g.vertices() {
        let (ra, rb) = (a.baseline(s).unwrap(), b.baseline(s).unwrap());
        for v in g.vertices() {
            assert_eq!(ra.dist(v), rb.dist(v), "dist s{s} v{v}");
            assert_eq!(ra.parent(v), rb.parent(v), "parent s{s} v{v}");
            assert_eq!(ra.cost(v), rb.cost(v), "cost s{s} v{v}");
        }
    }
}

fn independent_fold(g: &Graph, journal: &[FaultEvent]) -> FaultSet {
    let mut state = FaultState::for_graph(g);
    for &ev in journal {
        state.apply(ev).expect("journaled events re-apply cleanly in order");
    }
    state.faults().clone()
}

// ---------------------------------------------------------------------
// Deterministic scenarios
// ---------------------------------------------------------------------

/// Single-event epochs on the grid: every commit is served by the delta
/// builder, and every published snapshot equals `tree_from_with` and
/// `dijkstra_batch_par` at workers 1, 2, and 8 — cell for cell.
#[test]
fn delta_epochs_pin_against_engines_at_workers_1_2_8() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, delta_config()).unwrap();
    silence(&mut pipeline);

    let trace =
        random_trace_with(&g, 12, 0xd1f5_0001, TraceOptions { burst: 0.3, ..Default::default() });
    let sources: Vec<_> = g.vertices().collect();
    let mut rpts_scratch = scheme.new_scratch();
    for &ev in &trace {
        pipeline.ingest(ev).unwrap();
        let report = pipeline.commit().unwrap();
        assert!(report.published);
        assert!(report.delta, "single-event epochs must be served by the delta builder");

        let snapshot = pipeline.published_snapshot();
        let faults = snapshot.base_faults().clone();
        // Pin against the canonical per-query engine...
        for s in g.vertices() {
            let tree = scheme.tree_from_with(s, &faults, &mut rpts_scratch);
            let row = snapshot.baseline(s).unwrap();
            for v in g.vertices() {
                assert_eq!(row.dist(v), tree.dist(v), "tree_from_with dist s{s} v{v}");
                assert_eq!(row.parent(v), tree.parent(v), "tree_from_with parent s{s} v{v}");
            }
        }
        // ...and against the parallel batch engine at several widths.
        for workers in [1usize, 2, 8] {
            let fault_sets = [faults.clone()];
            let rows = dijkstra_batch_par(
                &g,
                &sources,
                &fault_sets,
                || scheme.directed_costs(),
                workers,
                |si, _fi, run| {
                    let s = sources[si];
                    let row = snapshot.baseline(s).unwrap();
                    g.vertices().all(|v| {
                        row.dist(v) == run.hops(v)
                            && row.parent(v) == run.parent(v)
                            && row.cost(v) == run.cost(v)
                    })
                },
            );
            assert!(
                rows.iter().flatten().all(|&ok| ok),
                "delta snapshot disagrees with dijkstra_batch_par at {workers} workers"
            );
        }
    }
    let health = pipeline.health();
    assert_eq!(health.delta_commits, trace.len() as u64);
    assert_eq!(health.full_rebuilds, 0);
    verify_converged(&pipeline).unwrap();
}

/// Copy-on-write row interning: after a single-fault delta commit, every
/// source row whose tree did not use the failed edge is **pointer**-shared
/// with the predecessor snapshot, and at least one row is freshly built.
#[test]
fn untouched_rows_share_storage_with_predecessor() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, delta_config()).unwrap();
    silence(&mut pipeline);
    let prev = pipeline.published_snapshot();

    let e = g.edge_between(0, 1).unwrap();
    pipeline.ingest(FaultEvent::Arrive(e)).unwrap();
    let report = pipeline.commit().unwrap();
    assert!(report.delta);
    let snap = pipeline.published_snapshot();

    let mut shared = 0usize;
    let mut patched = 0usize;
    for s in g.vertices() {
        let prev_row = prev.baseline(s).unwrap();
        let on_tree = tree_edge_child(&g, e, |v| prev_row.parent(v)).is_some();
        if on_tree {
            patched += 1;
            assert!(
                !snap.shares_row_storage(&prev, s),
                "source {s}'s tree used the failed edge; its row must be rebuilt"
            );
        } else {
            shared += 1;
            assert!(
                snap.shares_row_storage(&prev, s),
                "source {s}'s tree avoids the failed edge; its row must be shared"
            );
        }
    }
    assert!(patched > 0, "edge (0,1) is a tree edge of source 0's row at minimum");
    assert!(shared > 0, "a single fault must leave most grid rows untouched");

    // A rebuild-only pipeline never shares storage — the predicate has
    // teeth, not just vacuous truth.
    let mut rebuild = ChurnPipeline::with_config(&scheme, rebuild_config()).unwrap();
    silence(&mut rebuild);
    rebuild.ingest(FaultEvent::Arrive(e)).unwrap();
    let rb_report = rebuild.commit().unwrap();
    assert!(!rb_report.delta);
    let rb_snap = rebuild.published_snapshot();
    assert!(g.vertices().all(|s| !rb_snap.shares_row_storage(&prev, s)));
    assert_cells_identical(&g, &snap, &rb_snap);
}

/// Disconnection: two faults on a cycle cut off an arc of vertices.
/// The delta patch must leave exactly the same unreached cells as the
/// full rebuild — and repair must resurrect them identically.
#[test]
fn disconnecting_faults_and_repairs_match_rebuild() {
    let g = generators::cycle(8);
    let scheme = scheme_for(&g, 7);
    let mut delta = ChurnPipeline::with_config(&scheme, delta_config()).unwrap();
    let mut rebuild = ChurnPipeline::with_config(&scheme, rebuild_config()).unwrap();
    silence(&mut delta);
    silence(&mut rebuild);

    let e0 = g.edge_between(0, 1).unwrap();
    let e4 = g.edge_between(4, 5).unwrap();
    let events = [
        FaultEvent::Arrive(e0), // cycle becomes a path
        FaultEvent::Arrive(e4), // path splits: vertices 1..=4 unreachable from 0's side
        FaultEvent::Repair(e0), // reconnect
        FaultEvent::Repair(e4), // back to the full cycle
    ];
    for ev in events {
        delta.ingest(ev).unwrap();
        rebuild.ingest(ev).unwrap();
        let dr = delta.commit().unwrap();
        let rr = rebuild.commit().unwrap();
        assert!(dr.delta && !rr.delta);
        assert_cells_identical(&g, &delta.published_snapshot(), &rebuild.published_snapshot());
    }
    // The middle epoch really did disconnect something (test has teeth):
    // asserted via a fresh build at that fault set.
    let cut = OracleSnapshot::<u128>::builder(&scheme)
        .base_faults(FaultSet::from_edges([e0, e4]))
        .build();
    assert_eq!(cut.baseline(0).unwrap().dist(2), None);
    verify_converged(&delta).unwrap();
    verify_converged(&rebuild).unwrap();
}

/// 1k-event soak: long delta chains (patch-of-patch-of-patch...) never
/// drift. The converged pipeline equals the independent journal fold and
/// the engines, and deltas served the overwhelming majority of epochs.
#[test]
fn soak_1k_events_converges_and_deltas_dominate() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, delta_config()).unwrap();
    silence(&mut pipeline);

    let trace = random_trace_with(
        &g,
        1000,
        0x50a4_1234,
        TraceOptions { burst: 0.2, max_faults: Some(4), ..Default::default() },
    );
    assert_eq!(trace.len(), 1000);
    // Commit in small irregular batches so epochs see 1..=4 events.
    let mut i = 0usize;
    while i < trace.len() {
        let batch = 1 + (i * 7 + 3) % 4;
        for ev in &trace[i..(i + batch).min(trace.len())] {
            pipeline.ingest(*ev).unwrap();
        }
        i += batch;
        pipeline.commit().unwrap();
    }
    verify_converged(&pipeline).unwrap();
    assert_eq!(
        pipeline.published_snapshot().base_faults(),
        &independent_fold(&g, pipeline.journal())
    );

    let health = pipeline.health();
    assert_eq!(health.published_seq, 1000);
    assert_eq!(health.full_rebuilds, 0, "nothing should have escalated");
    assert!(
        health.delta_commits * 10 >= health.commits * 9,
        "deltas must dominate: {} delta of {} commits ({} fallbacks: {:?})",
        health.delta_commits,
        health.commits,
        health.delta_fallbacks,
        health.last_delta_fallback
    );
}

/// A panicking delta builder burns attempt 0 and the pipeline heals via
/// the from-scratch builder in attempt 1 — reason recorded, sticky.
#[test]
fn flaky_delta_panic_heals_via_full_build() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, delta_config()).unwrap();
    silence(&mut pipeline);
    pipeline.set_build_probe(Some(flaky_delta_builder(1, 0)));

    pipeline.ingest(FaultEvent::Arrive(0)).unwrap();
    let report = pipeline.commit().unwrap();
    assert!(report.published);
    assert!(!report.delta, "the publish came from the fallback full build");
    assert!(!report.full_rebuild, "no escalation was needed");
    assert_eq!(report.attempts, 2, "delta attempt + full-build attempt");
    let health = pipeline.health();
    assert_eq!(health.delta_fallbacks, 1);
    assert!(health.last_delta_fallback.as_deref().unwrap().contains("panicked"));
    verify_converged(&pipeline).unwrap();

    // Probe exhausted: the next commit goes back to serving deltas, and
    // the fallback reason stays visible (sticky) for operators.
    pipeline.ingest(FaultEvent::Arrive(1)).unwrap();
    let report = pipeline.commit().unwrap();
    assert!(report.delta);
    assert_eq!(report.attempts, 1);
    let health = pipeline.health();
    assert_eq!(health.delta_commits, 1);
    assert_eq!(health.delta_fallbacks, 1);
    assert!(health.last_delta_fallback.is_some(), "fallback reason is sticky");
    verify_converged(&pipeline).unwrap();
}

/// A delta patch whose output is corrupted is rejected by the sampled
/// cross-check — the gate gates deltas exactly as it gates rebuilds.
#[test]
fn cross_check_rejects_corrupted_delta() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, delta_config()).unwrap();
    silence(&mut pipeline);
    let epoch_before = pipeline.oracle().epoch();
    pipeline.set_build_probe(Some(flaky_delta_builder(0, 1)));

    pipeline.ingest(FaultEvent::Arrive(0)).unwrap();
    let report = pipeline.commit().unwrap();
    assert!(report.published);
    assert!(!report.delta);
    assert_eq!(report.attempts, 2, "corrupt delta rejected, full build published");
    assert_eq!(pipeline.oracle().epoch(), epoch_before + 1, "the corrupt snapshot never published");
    let health = pipeline.health();
    assert_eq!(health.delta_fallbacks, 1);
    assert!(health.last_delta_fallback.as_deref().unwrap().contains("cross-check mismatch"));
    verify_converged(&pipeline).unwrap();
}

// ---------------------------------------------------------------------
// Property tests: the differential battery proper
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// THE delta-vs-rebuild equality property: random valid churn traces
    /// (arrivals + repairs + dense same-edge bursts, f ≤ 3) through a
    /// delta-enabled and a rebuild-only pipeline, committed in the same
    /// irregular batches — published snapshots are cell-by-cell
    /// identical at every single epoch.
    #[test]
    fn delta_and_rebuild_pipelines_publish_identical_snapshots(
        wseed in any::<u64>(),
        tseed in any::<u64>(),
        burst_pct in 0u32..50,
        batch_stride in 1usize..5,
    ) {
        let g = generators::grid(4, 4);
        let scheme = scheme_for(&g, wseed);
        let mut delta = ChurnPipeline::with_config(&scheme, delta_config()).unwrap();
        let mut rebuild = ChurnPipeline::with_config(&scheme, rebuild_config()).unwrap();
        silence(&mut delta);
        silence(&mut rebuild);

        let opts = TraceOptions {
            burst: f64::from(burst_pct) / 100.0,
            max_faults: Some(3),
            ..Default::default()
        };
        let trace = random_trace_with(&g, 30, tseed, opts);
        for chunk in trace.chunks(batch_stride) {
            for &ev in chunk {
                delta.ingest(ev).unwrap();
                rebuild.ingest(ev).unwrap();
            }
            let dr = delta.commit().unwrap();
            let rr = rebuild.commit().unwrap();
            prop_assert_eq!(dr.epoch, rr.epoch);
            prop_assert_eq!(dr.seq, rr.seq);
            prop_assert!(!rr.delta, "the control arm must never delta");
            assert_cells_identical(&g, &delta.published_snapshot(), &rebuild.published_snapshot());
        }
        verify_converged(&delta).unwrap();
        verify_converged(&rebuild).unwrap();
        let health = delta.health();
        prop_assert!(
            health.delta_commits > 0,
            "a 30-event trace must see at least one delta commit ({:?})",
            health.last_delta_fallback
        );
    }

    /// Same property on irregular sparse graphs (connected G(n, m)) —
    /// no grid structure to hide behind, repairs of cut edges included.
    #[test]
    fn delta_equivalence_on_random_graphs(
        (n, gseed, wseed) in (6usize..=14, any::<u64>(), any::<u64>()),
        tseed in any::<u64>(),
    ) {
        let m = (n + n / 2).min(n * (n - 1) / 2);
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = scheme_for(&g, wseed);
        let mut delta = ChurnPipeline::with_config(&scheme, delta_config()).unwrap();
        let mut rebuild = ChurnPipeline::with_config(&scheme, rebuild_config()).unwrap();
        silence(&mut delta);
        silence(&mut rebuild);

        let opts = TraceOptions { burst: 0.25, max_faults: Some(3), ..Default::default() };
        for &ev in &random_trace_with(&g, 20, tseed, opts) {
            delta.ingest(ev).unwrap();
            rebuild.ingest(ev).unwrap();
            delta.commit().unwrap();
            rebuild.commit().unwrap();
            assert_cells_identical(&g, &delta.published_snapshot(), &rebuild.published_snapshot());
        }
        verify_converged(&delta).unwrap();
        verify_converged(&rebuild).unwrap();
    }
}
