//! The weighted restoration lemma (Theorem 11) and weighted single-pair
//! replacement paths.
//!
//! For undirected graphs with positive weights, the restoration lemma
//! takes a weaker but *tiebreaking-insensitive* form: for any failing
//! edge there is an edge `(u, v)` such that **any** shortest paths
//! `π(s, u)`, `π(v, t)` make `π(s, u) ∘ (u, v) ∘ π(v, t)` a replacement
//! shortest path. This module:
//!
//! * empirically verifies Theorem 11 instance-by-instance
//!   ([`verify_weighted_restoration_lemma`]);
//! * implements the weighted single-pair replacement path algorithm the
//!   paper's Theorem 28 proof sketch describes (candidate per edge,
//!   interval of covered failures, union-find sweep), which is also the
//!   engine behind Algorithm 1's per-pair black box.
//!
//! Shortest paths are made unique by scaled perturbation: edge `e` costs
//! `w(e)·S + r(e)` with `r(e)` uniform in `[0, S/n)`, so weight classes
//! never mix and the branch-index interval argument carries over
//! verbatim from the unweighted case.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_graph::{dijkstra, EdgeId, EdgeWeights, FaultSet, Graph, Path, Vertex, WeightedSpt};

use crate::unionfind::NextFree;

/// Scale factor: perturbations live strictly below one weight unit.
fn scale_for(g: &Graph) -> u128 {
    (g.n() as u128 + 2) * (1 << 20)
}

/// Perturbed costs making weighted shortest paths unique.
fn perturbed_costs(g: &Graph, weights: &EdgeWeights, seed: u64) -> Vec<u128> {
    let s = scale_for(g);
    let per_edge_max = s / (g.n() as u128 + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..g.m())
        .map(|e| weights.get(e) as u128 * s + rng.random_range(0..per_edge_max.max(1)))
        .collect()
}

fn spt_with(g: &Graph, costs: &[u128], source: Vertex, faults: &FaultSet) -> WeightedSpt<u128> {
    dijkstra(g, source, faults, |e, _, _| costs[e])
}

/// Recovers the true weighted distance from a scaled perturbed cost.
fn unscale(g: &Graph, cost: u128) -> u64 {
    (cost / scale_for(g)) as u64
}

/// Replacement distance for one failing edge of the selected weighted
/// path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightedEntry {
    /// The failing path edge.
    pub edge: EdgeId,
    /// `dist^w_{G\{edge}}(s, t)` in weight units, `None` if disconnected.
    pub dist: Option<u64>,
}

/// Output of [`weighted_single_pair`].
#[derive(Clone, Debug)]
pub struct WeightedSinglePair {
    path: Path,
    base: u64,
    entries: Vec<WeightedEntry>,
}

impl WeightedSinglePair {
    /// The selected (unique, perturbed) weighted shortest path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fault-free weighted distance.
    pub fn base_dist(&self) -> u64 {
        self.base
    }

    /// One entry per path edge, in path order.
    pub fn entries(&self) -> &[WeightedEntry] {
        &self.entries
    }
}

/// Weighted single-pair replacement paths: `dist^w_{G\{e}}(s, t)` for
/// every edge `e` on a weighted shortest `s ⇝ t` path.
///
/// Returns `None` if `t` is unreachable. `O(m log m)` after two
/// shortest-path trees.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn weighted_single_pair(
    g: &Graph,
    weights: &EdgeWeights,
    s: Vertex,
    t: Vertex,
    seed: u64,
) -> Option<WeightedSinglePair> {
    assert!(s < g.n() && t < g.n(), "pair out of range");
    if s == t {
        return Some(WeightedSinglePair { path: Path::trivial(s), base: 0, entries: Vec::new() });
    }
    let costs = perturbed_costs(g, weights, seed);
    let empty = FaultSet::empty();
    let spt_s = spt_with(g, &costs, s, &empty);
    let spt_t = spt_with(g, &costs, t, &empty);
    let path = spt_s.path_to(t)?;
    let base = unscale(g, *spt_s.cost(t).expect("reachable"));
    let verts = path.vertices();
    let ell = path.hops();

    let mut pos = vec![usize::MAX; g.n()];
    for (i, &v) in verts.iter().enumerate() {
        pos[v] = i;
    }
    let path_edges: Vec<EdgeId> = path.edge_ids(g).expect("valid path");
    let mut is_path_edge = vec![false; g.m()];
    for &e in &path_edges {
        is_path_edge[e] = true;
    }

    // Branch indices: identical argument to the unweighted case — unique
    // shortest paths make sp(s, v_j) the path prefix.
    let a = branch(g, &spt_s, &pos);
    let b = branch(g, &spt_t, &pos);

    struct Cand {
        cost: u128,
        lo: usize,
        hi: usize,
    }
    let mut cands = Vec::new();
    for (e, x, y) in g.edges() {
        if is_path_edge[e] {
            continue;
        }
        for (u, v) in [(x, y), (y, x)] {
            let (Some(du), Some(dv)) = (spt_s.cost(u), spt_t.cost(v)) else { continue };
            let (Some(au), Some(bv)) = (a[u], b[v]) else { continue };
            let (lo, hi) = (au + 1, bv);
            if lo > hi {
                continue;
            }
            cands.push(Cand { cost: du + costs[e] + dv, lo, hi });
        }
    }
    cands.sort_by_key(|c| c.cost);

    let mut answers: Vec<Option<u64>> = vec![None; ell];
    let mut free = NextFree::new(ell);
    let mut remaining = ell;
    'sweep: for c in &cands {
        let mut i = free.find(c.lo - 1);
        while let Some(slot) = i {
            if slot > c.hi - 1 {
                break;
            }
            answers[slot] = Some(unscale(g, c.cost));
            free.mark(slot);
            remaining -= 1;
            if remaining == 0 {
                break 'sweep;
            }
            i = free.find(slot);
        }
    }

    let entries = path_edges
        .iter()
        .zip(&answers)
        .map(|(&edge, &dist)| WeightedEntry { edge, dist })
        .collect();
    Some(WeightedSinglePair { path, base, entries })
}

fn branch(g: &Graph, spt: &WeightedSpt<u128>, pos: &[usize]) -> Vec<Option<usize>> {
    let mut order: Vec<Vertex> = g.vertices().filter(|&v| spt.cost(v).is_some()).collect();
    order.sort_by_key(|&v| spt.hops(v).expect("reachable"));
    let mut out = vec![None; g.n()];
    for v in order {
        out[v] = if pos[v] != usize::MAX {
            Some(pos[v])
        } else {
            let (p, _) = spt.parent(v).expect("reachable non-root");
            out[p]
        };
    }
    out
}

/// Outcome of an empirical Theorem 11 check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestorationLemmaStats {
    /// `(s, t, e)` instances with a surviving replacement path.
    pub instances: usize,
    /// Instances witnessed by some middle edge `(u, v)` (must equal
    /// `instances` — Theorem 11 is a theorem).
    pub witnessed: usize,
}

/// Verifies the weighted restoration lemma (Theorem 11) instance by
/// instance: for every pair in `pairs` and every edge on the selected
/// weighted shortest path, some middle edge `(u, v)` must satisfy
/// `d(s,u) + w(u,v) + d(v,t) = dist^w_{G\{e}}(s, t)` with both side
/// paths avoiding `e`.
pub fn verify_weighted_restoration_lemma(
    g: &Graph,
    weights: &EdgeWeights,
    pairs: &[(Vertex, Vertex)],
    seed: u64,
) -> RestorationLemmaStats {
    let costs = perturbed_costs(g, weights, seed);
    let mut stats = RestorationLemmaStats::default();
    for &(s, t) in pairs {
        let empty = FaultSet::empty();
        let spt_s = spt_with(g, &costs, s, &empty);
        let spt_t = spt_with(g, &costs, t, &empty);
        let Some(path) = spt_s.path_to(t) else { continue };
        for &e in &path.edge_ids(g).expect("valid") {
            let faults = FaultSet::single(e);
            let truth = rsp_graph::weighted_sssp(g, weights, s, &faults);
            let Some(&replacement) = truth.cost(t) else { continue };
            stats.instances += 1;
            // Scan middle edges for a witness.
            let witnessed = g.edges().any(|(mid, x, y)| {
                if mid == e {
                    return false;
                }
                [(x, y), (y, x)].into_iter().any(|(u, v)| {
                    let (Some(ps), Some(pt)) = (spt_s.path_to(u), spt_t.path_to(v)) else {
                        return false;
                    };
                    if ps.uses_edge(g, e) || pt.uses_edge(g, e) {
                        return false;
                    }
                    let len = weights.path_weight(g, &ps).expect("valid")
                        + weights.get(mid)
                        + weights.path_weight(g, &pt).expect("valid");
                    len == replacement
                })
            });
            if witnessed {
                stats.witnessed += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::{generators, weighted_sssp};

    fn check_against_naive(g: &Graph, weights: &EdgeWeights, s: Vertex, t: Vertex, seed: u64) {
        let fast = weighted_single_pair(g, weights, s, t, seed).expect("connected");
        // Base distance sanity.
        let truth0 = weighted_sssp(g, weights, s, &FaultSet::empty());
        assert_eq!(Some(&fast.base_dist()), truth0.cost(t));
        for entry in fast.entries() {
            let truth = weighted_sssp(g, weights, s, &FaultSet::single(entry.edge));
            assert_eq!(entry.dist, truth.cost(t).copied(), "edge {}", entry.edge);
        }
    }

    #[test]
    fn matches_naive_on_weighted_cycle() {
        let g = generators::cycle(8);
        let w = EdgeWeights::random(&g, 10, 1);
        check_against_naive(&g, &w, 0, 4, 2);
    }

    #[test]
    fn matches_naive_on_weighted_grids_and_random() {
        let g = generators::grid(4, 4);
        let w = EdgeWeights::random(&g, 20, 3);
        for (s, t) in [(0, 15), (3, 12)] {
            check_against_naive(&g, &w, s, t, 4);
        }
        for seed in 0..4 {
            let g = generators::connected_gnm(22, 50, seed);
            let w = EdgeWeights::random(&g, 50, seed + 9);
            check_against_naive(&g, &w, 0, 21, seed + 20);
        }
    }

    #[test]
    fn unit_weights_agree_with_unweighted_algorithm() {
        let g = generators::connected_gnm(20, 45, 7);
        let w = EdgeWeights::uniform(&g, 1);
        let weighted = weighted_single_pair(&g, &w, 0, 19, 5).unwrap();
        let unweighted = crate::single_pair::single_pair_replacement_paths(&g, 0, 19, 5).unwrap();
        assert_eq!(weighted.base_dist(), unweighted.base_dist() as u64);
        // Paths may differ (different perturbations) but distances agree
        // edge-for-edge where the paths coincide.
        for entry in weighted.entries() {
            let via_unweighted = unweighted.dist_after_fault(entry.edge);
            if weighted.path() == unweighted.path() {
                assert_eq!(entry.dist, via_unweighted.map(u64::from));
            }
        }
    }

    #[test]
    fn bridges_disconnect() {
        let g = generators::path_graph(5);
        let w = EdgeWeights::random(&g, 5, 2);
        let fast = weighted_single_pair(&g, &w, 0, 4, 3).unwrap();
        assert!(fast.entries().iter().all(|e| e.dist.is_none()));
    }

    #[test]
    fn theorem11_holds_empirically() {
        for seed in 0..4 {
            let g = generators::connected_gnm(14, 30, seed);
            let w = EdgeWeights::random(&g, 8, seed + 1);
            let pairs = [(0, 13), (3, 9), (6, 12)];
            let stats = verify_weighted_restoration_lemma(&g, &w, &pairs, seed + 2);
            assert!(stats.instances > 0, "seed {seed} produced no instances");
            assert_eq!(
                stats.witnessed, stats.instances,
                "Theorem 11 must witness every instance (seed {seed})"
            );
        }
    }

    #[test]
    fn trivial_pair() {
        let g = generators::cycle(4);
        let w = EdgeWeights::uniform(&g, 2);
        let r = weighted_single_pair(&g, &w, 1, 1, 0).unwrap();
        assert_eq!(r.base_dist(), 0);
        assert!(r.entries().is_empty());
    }
}
