//! **E8 / Theorem 10** — fault-tolerant exact distance label sizes
//! against `O(n^{2−1/2^f} log n)` bits, with query correctness checks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_core::RandomGridAtw;
use rsp_graph::{bfs, FaultSet};
use rsp_labeling::build_labeling;

use crate::reporting::{f3, loglog_slope, Table};
use crate::workloads::sparse_sweep;

/// Runs E8 and prints the tables.
pub fn run(quick: bool) {
    let sizes: &[usize] = if quick { &[30, 60] } else { &[30, 60, 120, 200] };
    for f in [0usize, 1] {
        let supported = f + 1;
        let mut table = Table::new(
            &format!(
                "E8 (Theorem 10): {}-FT exact distance labels (preserver depth f = {f})",
                supported
            ),
            &["graph", "n", "max label bits", "bound n^(2-1/2^f) log n", "ratio"],
        );
        let mut ns = Vec::new();
        let mut bits = Vec::new();
        for w in sparse_sweep(sizes, 41) {
            if f == 1 && w.graph.n() > 120 {
                continue; // the f = 1 build is O(n^2) trees; cap the sweep
            }
            let g = &w.graph;
            let scheme = RandomGridAtw::theorem20(g, 43).into_scheme();
            let labeling = build_labeling(&scheme, f);

            // Query correctness on random (s, t, F) probes.
            let mut rng = StdRng::seed_from_u64(47);
            let probes = if quick { 20 } else { 60 };
            for _ in 0..probes {
                let s = rng.random_range(0..g.n());
                let t = rng.random_range(0..g.n());
                let fault_edges: Vec<usize> =
                    (0..supported).map(|_| rng.random_range(0..g.m())).collect();
                let fs = FaultSet::from_edges(fault_edges.iter().copied());
                let pairs: Vec<_> = fs.iter().map(|e| g.endpoints(e)).collect();
                let truth = bfs(g, s, &fs).dist(t);
                assert_eq!(labeling.query(s, t, &pairs), truth, "({s},{t}) F={fs}");
            }

            let n = g.n() as f64;
            let bound = n.powf(2.0 - 1.0 / (1u64 << f) as f64) * n.log2();
            ns.push(n);
            bits.push(labeling.max_label_bits() as f64);
            table.row(&[
                w.name.clone(),
                g.n().to_string(),
                labeling.max_label_bits().to_string(),
                f3(bound),
                f3(labeling.max_label_bits() as f64 / bound),
            ]);
        }
        table.print();
        if ns.len() >= 2 {
            println!(
                "measured label-size exponent {} vs theorem {} (+ log factor)\n",
                f3(loglog_slope(&ns, &bits)),
                f3(2.0 - 1.0 / (1u64 << f) as f64)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_runs_quick() {
        super::run(true);
    }
}
