//! E7 timing: fault-tolerant +4 additive spanner construction
//! (Lemma 32 / Theorem 33).

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::RandomGridAtw;
use rsp_graph::generators;
use rsp_spanner::{ft_additive_spanner, theorem33_sigma};

fn bench_spanner(c: &mut Criterion) {
    let n = 150;
    let g = generators::connected_gnm(n, n * (n - 1) / 8, 7);
    let scheme = RandomGridAtw::theorem20(&g, 9).into_scheme();
    let sigma = theorem33_sigma(n, 1);

    c.bench_function("spanner/1ft_plus4_n150", |b| {
        b.iter(|| ft_additive_spanner(&scheme, sigma, 1, 11))
    });
    c.bench_function("spanner/2ft_plus4_n150", |b| {
        b.iter(|| ft_additive_spanner(&scheme, theorem33_sigma(n, 2), 2, 11))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spanner
}
criterion_main!(benches);
