//! Command-line experiment runner: regenerates every figure and headline
//! claim of the paper (see DESIGN.md's experiment index).
//!
//! ```text
//! experiments [--quick] [all | e1 e2 … e11]
//! ```

use rsp_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<String> = args.into_iter().filter(|a| a != "--quick").collect();
    let ids: Vec<String> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        experiments::ALL.iter().map(|s| s.to_string()).collect()
    } else {
        ids
    };

    println!(
        "Restorable Shortest Path Tiebreaking — experiment harness\n\
         (paper: Bodwin & Parter, PODC 2021; mode: {})\n",
        if quick { "quick" } else { "full" }
    );
    let mut unknown = Vec::new();
    for id in &ids {
        let start = std::time::Instant::now();
        if experiments::run(id, quick) {
            println!("[{id} finished in {:.1}s]\n", start.elapsed().as_secs_f64());
        } else {
            unknown.push(id.clone());
        }
    }
    if !unknown.is_empty() {
        eprintln!("unknown experiment ids: {unknown:?}; valid: {:?}", experiments::ALL);
        std::process::exit(2);
    }
}
