//! The "next free position" union-find used by the candidate sweep.
//!
//! Theorem 28's proof sketch steps through candidate replacement paths in
//! weight order and labels the still-unlabeled path edges each candidate
//! covers. The data structure that makes the sweep near-linear is a
//! union-find where `find(i)` returns the smallest *unmarked* position
//! `≥ i`; marking a position unions it with its successor.

/// Union-find over positions `0..k` answering "smallest unmarked position
/// `≥ i`" with path compression (amortized inverse-Ackermann).
///
/// # Examples
///
/// ```
/// use rsp_replacement::NextFree;
///
/// let mut nf = NextFree::new(4);
/// assert_eq!(nf.find(0), Some(0));
/// nf.mark(0);
/// nf.mark(1);
/// assert_eq!(nf.find(0), Some(2));
/// nf.mark(2);
/// nf.mark(3);
/// assert_eq!(nf.find(0), None); // everything marked
/// ```
#[derive(Clone, Debug)]
pub struct NextFree {
    /// `parent[i]` is a position `≥ i` on the way to the next free slot;
    /// index `k` is the "all full" sentinel.
    parent: Vec<usize>,
}

impl NextFree {
    /// Creates the structure with all of `0..k` unmarked.
    pub fn new(k: usize) -> Self {
        NextFree { parent: (0..=k).collect() }
    }

    /// Number of positions (excluding the sentinel).
    pub fn len(&self) -> usize {
        self.parent.len() - 1
    }

    /// Returns `true` if there are no positions at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The smallest unmarked position `≥ i`, or `None` if all of `i..k`
    /// are marked.
    ///
    /// # Panics
    ///
    /// Panics if `i > k`.
    pub fn find(&mut self, i: usize) -> Option<usize> {
        let k = self.len();
        assert!(i <= k, "position {i} out of range 0..={k}");
        let root = self.find_root(i);
        if root == k {
            None
        } else {
            Some(root)
        }
    }

    fn find_root(&mut self, i: usize) -> usize {
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = i;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Marks position `i` as used; subsequent `find` skips it.
    ///
    /// Marking an already marked position is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn mark(&mut self, i: usize) {
        assert!(i < self.len(), "cannot mark the sentinel");
        if self.parent[i] == i {
            self.parent[i] = self.find_root(i + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_structure_returns_identity() {
        let mut nf = NextFree::new(5);
        for i in 0..5 {
            assert_eq!(nf.find(i), Some(i));
        }
    }

    #[test]
    fn skips_marked_runs() {
        let mut nf = NextFree::new(6);
        for i in [1, 2, 3] {
            nf.mark(i);
        }
        assert_eq!(nf.find(1), Some(4));
        assert_eq!(nf.find(0), Some(0));
        nf.mark(0);
        assert_eq!(nf.find(0), Some(4));
    }

    #[test]
    fn exhaustion() {
        let mut nf = NextFree::new(3);
        for i in 0..3 {
            nf.mark(i);
        }
        assert_eq!(nf.find(0), None);
        assert_eq!(nf.find(3), None);
    }

    #[test]
    fn double_mark_is_noop() {
        let mut nf = NextFree::new(3);
        nf.mark(1);
        nf.mark(1);
        assert_eq!(nf.find(0), Some(0));
        assert_eq!(nf.find(1), Some(2));
    }

    #[test]
    fn zero_capacity() {
        let mut nf = NextFree::new(0);
        assert!(nf.is_empty());
        assert_eq!(nf.find(0), None);
    }

    #[test]
    fn interval_sweep_pattern() {
        // The exact usage pattern of the candidate sweep: repeatedly find
        // in an interval and mark.
        let mut nf = NextFree::new(10);
        let mut labeled = Vec::new();
        let (lo, hi) = (2, 7);
        let mut i = nf.find(lo);
        while let Some(p) = i {
            if p > hi {
                break;
            }
            labeled.push(p);
            nf.mark(p);
            i = nf.find(p);
        }
        assert_eq!(labeled, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(nf.find(0), Some(0));
        assert_eq!(nf.find(2), Some(8));
    }
}
