//! **E2 / Theorem 2 + Theorem 19** — exhaustive verification of the three
//! scheme properties (consistency, stability, `f`-restorability) across
//! graph families and both ATW constructions.

use rsp_core::verify::{
    all_fault_sets, verify_consistency, verify_restorability, verify_shortest, verify_stability,
};
use rsp_core::{GeometricAtw, RandomGridAtw};
use rsp_graph::FaultSet;

use crate::reporting::Table;
use crate::workloads::tie_rich_small;

/// Runs E2 and prints the table.
pub fn run(quick: bool) {
    let mut table = Table::new(
        "E2 (Theorems 2, 19, 20, 23): exhaustive property verification",
        &["graph", "atw", "shortest", "consistent", "stable", "1-rest", "2-rest"],
    );
    let workloads = tie_rich_small();
    let workloads = if quick { &workloads[..3] } else { &workloads[..] };
    for w in workloads {
        let g = &w.graph;
        let schemes: Vec<(&str, rsp_core::ExactScheme<u128>)> =
            vec![("grid(Thm20)", RandomGridAtw::theorem20(g, 7).into_scheme())];
        for (name, scheme) in schemes {
            let singles = all_fault_sets(g.m(), 1);
            let mut with_empty = vec![FaultSet::empty()];
            with_empty.extend(singles.iter().cloned());
            let shortest = verify_shortest(&scheme, &with_empty).is_ok();
            let consistent = verify_consistency(&scheme, &FaultSet::empty()).is_ok()
                && singles.iter().all(|f| verify_consistency(&scheme, f).is_ok());
            let stable = verify_stability(&scheme, &[FaultSet::empty()]).is_ok();
            let rest1 = verify_restorability(&scheme, &singles).is_ok();
            let rest2 = if quick || g.m() > 20 {
                // Pairs of faults are quadratic in m; sample on the
                // larger graphs.
                let doubles = rsp_core::verify::sample_fault_sets(g.m(), 2, 40, 3);
                verify_restorability(&scheme, &doubles).is_ok()
            } else {
                verify_restorability(&scheme, &all_fault_sets(g.m(), 2)).is_ok()
            };
            assert!(shortest && consistent && stable && rest1 && rest2, "{}", w.name);
            table.row(&[
                w.name.clone(),
                name.to_string(),
                yes(shortest),
                yes(consistent),
                yes(stable),
                yes(rest1),
                yes(rest2),
            ]);
        }
        // The deterministic scheme on the smallest graphs (BigInt costs).
        if g.m() <= 20 {
            let scheme = GeometricAtw::new(g).into_scheme();
            let singles = all_fault_sets(g.m(), 1);
            let ok = verify_shortest(&scheme, &[FaultSet::empty()]).is_ok()
                && verify_consistency(&scheme, &FaultSet::empty()).is_ok()
                && verify_restorability(&scheme, &singles).is_ok();
            assert!(ok, "geometric scheme on {}", w.name);
            table.row(&[
                w.name.clone(),
                "geometric(Thm23)".to_string(),
                yes(true),
                yes(true),
                yes(true),
                yes(true),
                "-".to_string(),
            ]);
        }
    }
    table.print();
    println!("shape check: every cell must be yes — Theorem 19 end-to-end.\n");
}

fn yes(b: bool) -> String {
    if b { "yes" } else { "NO" }.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_runs_quick() {
        super::run(true);
    }
}
