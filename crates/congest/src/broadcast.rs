//! Broadcast and convergecast primitives.
//!
//! The distributed constructions of Section 4.5 presume a few standard
//! CONGEST building blocks: Lemma 36 shares an `O(log² n)`-bit random
//! seed with all vertices, and size accounting needs global aggregates.
//! Both are classic BFS-tree exercises; implementing them keeps the
//! simulator honest about *every* round the constructions consume.
//!
//! * [`broadcast`] — the root floods a value down a BFS wave:
//!   `O(D)` rounds, one message per edge per direction;
//! * [`convergecast_sum`] — leaves-to-root aggregation over an already
//!   established BFS tree followed by a broadcast of the total:
//!   `O(D)` rounds each way.

use rsp_graph::{bfs, FaultSet, Graph, Vertex};

use crate::sim::{MsgSize, Network, NodeCtx, Outbox, Program, RunStats};

/// A broadcast payload (e.g. the shared seed of Lemma 36).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastMsg {
    /// The flooded value.
    pub value: u64,
}

impl MsgSize for BroadcastMsg {
    fn bits(&self) -> usize {
        (64 - self.value.leading_zeros() as usize).max(1)
    }
}

#[derive(Clone, Debug)]
struct FloodProgram {
    is_root: bool,
    value: Option<u64>,
    forwarded: bool,
}

impl Program<BroadcastMsg> for FloodProgram {
    fn step(
        &mut self,
        ctx: &NodeCtx<'_>,
        inbox: &[(Vertex, BroadcastMsg)],
        out: &mut Outbox<BroadcastMsg>,
    ) {
        if self.value.is_none() {
            if let Some(&(_, msg)) = inbox.first() {
                self.value = Some(msg.value);
            }
        }
        if let Some(v) = self.value {
            if !self.forwarded {
                self.forwarded = true;
                for &nb in ctx.neighbors {
                    out.send(nb, BroadcastMsg { value: v });
                }
            }
        }
    }

    fn pending(&self, _round: usize) -> bool {
        self.is_root && !self.forwarded
    }
}

/// Result of a broadcast: the value received at each vertex plus run
/// statistics.
#[derive(Clone, Debug)]
pub struct BroadcastResult {
    /// Per-vertex received value (`None` for vertices disconnected from
    /// the root).
    pub received: Vec<Option<u64>>,
    /// Round/message statistics.
    pub stats: RunStats,
}

/// Floods `value` from `root` to every vertex: `O(D)` rounds, at most
/// two messages per edge.
///
/// # Errors
///
/// Propagates [`crate::CongestionError`] (indicates a bug — the flood
/// obeys the quota by construction).
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn broadcast(
    g: &Graph,
    root: Vertex,
    value: u64,
) -> Result<BroadcastResult, crate::CongestionError> {
    assert!(root < g.n(), "root out of range");
    let programs: Vec<FloodProgram> = g
        .vertices()
        .map(|v| FloodProgram {
            is_root: v == root,
            value: (v == root).then_some(value),
            forwarded: false,
        })
        .collect();
    let mut net = Network::new(g, programs);
    let stats = net.run(2 * g.n() + 4)?;
    let received = net.into_programs().into_iter().map(|p| p.value).collect();
    Ok(BroadcastResult { received, stats })
}

/// A convergecast payload: a partial aggregate climbing the tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggregateMsg {
    /// The partial sum.
    pub sum: u64,
}

impl MsgSize for AggregateMsg {
    fn bits(&self) -> usize {
        (64 - self.sum.leading_zeros() as usize).max(1)
    }
}

#[derive(Clone, Debug)]
struct ConvergecastProgram {
    parent: Option<Vertex>,
    /// Children in the BFS tree (tree neighbors that are not the parent).
    children: Vec<Vertex>,
    local: u64,
    received: usize,
    acc: u64,
    sent: bool,
    is_root: bool,
    total: Option<u64>,
}

impl Program<AggregateMsg> for ConvergecastProgram {
    fn step(
        &mut self,
        _ctx: &NodeCtx<'_>,
        inbox: &[(Vertex, AggregateMsg)],
        out: &mut Outbox<AggregateMsg>,
    ) {
        for &(_, msg) in inbox {
            self.acc += msg.sum;
            self.received += 1;
        }
        if !self.sent && self.received == self.children.len() {
            self.sent = true;
            let subtotal = self.acc + self.local;
            match self.parent {
                Some(p) => out.send(p, AggregateMsg { sum: subtotal }),
                None => self.total = Some(subtotal), // the root
            }
        }
    }

    fn pending(&self, _round: usize) -> bool {
        // Leaves fire spontaneously in round 0.
        !self.sent && self.received == self.children.len()
    }
}

/// Result of a convergecast: the root's total plus run statistics.
#[derive(Clone, Debug)]
pub struct ConvergecastResult {
    /// The aggregate at the root.
    pub total: u64,
    /// Round/message statistics.
    pub stats: RunStats,
}

/// Sums `local_values` up a BFS tree rooted at `root`: `O(D)` rounds,
/// one message per tree edge.
///
/// # Errors
///
/// Propagates [`crate::CongestionError`].
///
/// # Panics
///
/// Panics if `root` is out of range, `local_values` has the wrong
/// length, or the graph is disconnected (the aggregate would be
/// partial).
pub fn convergecast_sum(
    g: &Graph,
    root: Vertex,
    local_values: &[u64],
) -> Result<ConvergecastResult, crate::CongestionError> {
    assert!(root < g.n(), "root out of range");
    assert_eq!(local_values.len(), g.n(), "one value per vertex");
    let tree = bfs(g, root, &FaultSet::empty());
    assert_eq!(tree.reachable_count(), g.n(), "convergecast needs a connected graph");
    let mut children: Vec<Vec<Vertex>> = vec![Vec::new(); g.n()];
    for v in g.vertices() {
        if let Some((p, _)) = tree.parent(v) {
            children[p].push(v);
        }
    }
    let programs: Vec<ConvergecastProgram> = g
        .vertices()
        .map(|v| ConvergecastProgram {
            parent: tree.parent(v).map(|(p, _)| p),
            children: std::mem::take(&mut children[v]),
            local: local_values[v],
            received: 0,
            acc: 0,
            sent: false,
            is_root: v == root,
            total: None,
        })
        .collect();
    let mut net = Network::new(g, programs);
    let stats = net.run(2 * g.n() + 4)?;
    let programs = net.into_programs();
    let total = programs
        .iter()
        .find(|p| p.is_root)
        .and_then(|p| p.total)
        .expect("the root aggregates after all children report");
    Ok(ConvergecastResult { total, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::{diameter, generators};

    #[test]
    fn broadcast_reaches_everyone_in_d_rounds() {
        let g = generators::torus(5, 5);
        let r = broadcast(&g, 0, 0xDEAD).unwrap();
        assert!(r.received.iter().all(|v| *v == Some(0xDEAD)));
        let d = diameter(&g) as usize;
        assert!(r.stats.rounds <= d + 3, "O(D): got {} for D={d}", r.stats.rounds);
        assert!(r.stats.max_messages_per_edge <= 2);
    }

    #[test]
    fn broadcast_respects_disconnection() {
        let g = rsp_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let r = broadcast(&g, 0, 7).unwrap();
        assert_eq!(r.received[1], Some(7));
        assert_eq!(r.received[2], None);
        assert_eq!(r.received[3], None);
    }

    #[test]
    fn convergecast_sums_exactly() {
        let g = generators::grid(4, 4);
        let values: Vec<u64> = (0..16).collect();
        let r = convergecast_sum(&g, 5, &values).unwrap();
        assert_eq!(r.total, (0..16).sum::<u64>());
        let d = diameter(&g) as usize;
        assert!(r.stats.rounds <= 2 * d + 4);
    }

    #[test]
    fn convergecast_on_path_is_linear_rounds() {
        let g = generators::path_graph(10);
        let values = vec![1u64; 10];
        let r = convergecast_sum(&g, 0, &values).unwrap();
        assert_eq!(r.total, 10);
        assert!(r.stats.rounds >= 9, "the deepest leaf is 9 hops away");
    }

    #[test]
    fn single_vertex_convergecast() {
        let g = rsp_graph::Graph::from_edges(1, []).unwrap();
        let r = convergecast_sum(&g, 0, &[42]).unwrap();
        assert_eq!(r.total, 42);
    }
}
