//! Cut/subtree helpers over parent-pointer trees.
//!
//! A shortest-path tree stored as per-vertex parent pointers (the form
//! `rsp_oracle`'s snapshot rows take) has no child lists, but the
//! incremental delta builder needs the opposite traversal: given a
//! failed tree edge, collect the **subtree hanging below it** — the
//! exact set of vertices whose stored path used the edge and therefore
//! must be recomputed (everything else is provably unchanged).
//!
//! [`SubtreeScratch::collect_subtree`] does this with work proportional
//! to the detached subtree's degree sum, not to `n`: a BFS over the
//! graph adjacency that admits a neighbor exactly when its parent
//! pointer points back along the connecting edge. [`tree_edge_child`]
//! is the companion cut test: is this edge on the tree at all, and if
//! so which endpoint is the child (the subtree root)?

use crate::graph::{EdgeId, Graph, Vertex};

/// If `e` is a tree edge of the parent-pointer tree described by
/// `parent`, returns the **child** endpoint — the root of the subtree
/// that detaches when `e` fails. Returns `None` when `e` is not on the
/// tree (failing it then changes nothing).
///
/// `parent(v)` must return `v`'s tree parent as `(vertex, edge id)`, or
/// `None` for the tree's root and unreachable vertices.
///
/// # Examples
///
/// ```
/// use rsp_graph::{bfs, generators, tree_edge_child, FaultSet};
///
/// let g = generators::path_graph(4); // 0 - 1 - 2 - 3
/// let tree = bfs(&g, 0, &FaultSet::empty());
/// let e = g.edge_between(1, 2).unwrap();
/// // In the BFS tree from 0, vertex 2's parent is 1 via `e`:
/// assert_eq!(tree_edge_child(&g, e, |v| tree.parent(v)), Some(2));
/// ```
pub fn tree_edge_child(
    g: &Graph,
    e: EdgeId,
    mut parent: impl FnMut(Vertex) -> Option<(Vertex, EdgeId)>,
) -> Option<Vertex> {
    if e >= g.m() {
        return None;
    }
    let (u, v) = g.endpoints(e);
    if parent(u) == Some((v, e)) {
        Some(u)
    } else if parent(v) == Some((u, e)) {
        Some(v)
    } else {
        None
    }
}

/// Reusable state for [`SubtreeScratch::collect_subtree`]: an
/// epoch-stamped membership mark, so repeated collections on the same
/// graph are allocation-free and reset in O(1).
#[derive(Clone, Debug, Default)]
pub struct SubtreeScratch {
    mark: Vec<u32>,
    epoch: u32,
}

impl SubtreeScratch {
    /// An empty scratch; arrays grow on first use.
    pub fn new() -> Self {
        SubtreeScratch::default()
    }

    /// A scratch pre-sized for graphs of up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        SubtreeScratch { mark: vec![0; n], epoch: 0 }
    }

    /// Collects into `out` every vertex of the subtree rooted at `root`
    /// in the parent-pointer tree described by `parent` — `root` first,
    /// then its descendants in BFS order.
    ///
    /// `parent(v)` must return `v`'s tree parent as `(vertex, edge
    /// id)`, or `None` for the tree's root and unreachable vertices.
    /// The traversal walks the graph adjacency and admits a neighbor
    /// `x` of an admitted `w` exactly when `parent(x) == (w, edge)`,
    /// so its cost is the degree sum of the collected subtree — the
    /// "proportional to the change" bound the delta builder relies on.
    ///
    /// `out` is cleared first. After the call,
    /// [`SubtreeScratch::contains`] answers membership for this
    /// collection until the next one.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::{bfs, generators, FaultSet, SubtreeScratch};
    ///
    /// let g = generators::star(5); // center 0, leaves 1..=5
    /// let tree = bfs(&g, 0, &FaultSet::empty());
    /// let mut scratch = SubtreeScratch::with_capacity(g.n());
    /// let mut out = Vec::new();
    /// // The subtree under leaf 3 is just {3}...
    /// scratch.collect_subtree(&g, 3, |v| tree.parent(v), &mut out);
    /// assert_eq!(out, vec![3]);
    /// assert!(scratch.contains(3) && !scratch.contains(0));
    /// // ...while the subtree under the center is the whole star.
    /// scratch.collect_subtree(&g, 0, |v| tree.parent(v), &mut out);
    /// assert_eq!(out.len(), g.n());
    /// ```
    pub fn collect_subtree(
        &mut self,
        g: &Graph,
        root: Vertex,
        mut parent: impl FnMut(Vertex) -> Option<(Vertex, EdgeId)>,
        out: &mut Vec<Vertex>,
    ) {
        if self.mark.len() < g.n() {
            self.mark.resize(g.n(), self.epoch);
        }
        self.epoch = self.epoch.checked_add(1).unwrap_or_else(|| {
            self.mark.fill(0);
            1
        });
        out.clear();
        out.push(root);
        self.mark[root] = self.epoch;
        let mut i = 0;
        while i < out.len() {
            let w = out[i];
            i += 1;
            for (x, e) in g.neighbors(w) {
                if self.mark[x] != self.epoch && parent(x) == Some((w, e)) {
                    self.mark[x] = self.epoch;
                    out.push(x);
                }
            }
        }
    }

    /// `true` iff `v` was admitted by the most recent
    /// [`SubtreeScratch::collect_subtree`] call.
    pub fn contains(&self, v: Vertex) -> bool {
        self.mark.get(v).is_some_and(|&m| m == self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::fault::FaultSet;
    use crate::generators;

    #[test]
    fn path_graph_subtree_is_suffix() {
        let g = generators::path_graph(6);
        let tree = bfs(&g, 0, &FaultSet::empty());
        let mut scratch = SubtreeScratch::new();
        let mut out = Vec::new();
        scratch.collect_subtree(&g, 3, |v| tree.parent(v), &mut out);
        assert_eq!(out, vec![3, 4, 5]);
        for v in 0..3 {
            assert!(!scratch.contains(v));
        }
        for v in 3..6 {
            assert!(scratch.contains(v));
        }
    }

    #[test]
    fn non_tree_edge_has_no_child() {
        let g = generators::cycle(5);
        let tree = bfs(&g, 0, &FaultSet::empty());
        // Exactly one cycle edge is off the BFS tree (the one closing
        // the cycle); every other edge has a well-defined child.
        let mut off_tree = 0;
        for e in 0..g.m() {
            match tree_edge_child(&g, e, |v| tree.parent(v)) {
                Some(child) => {
                    let (u, v) = g.endpoints(e);
                    assert!(child == u || child == v);
                    assert_eq!(tree.parent(child).map(|(_, pe)| pe), Some(e));
                }
                None => off_tree += 1,
            }
        }
        assert_eq!(off_tree, 1);
        // Out-of-range ids are never tree edges.
        assert_eq!(tree_edge_child(&g, g.m(), |v| tree.parent(v)), None);
    }

    #[test]
    fn subtree_matches_parent_chain_membership() {
        let g = generators::grid(5, 5);
        let tree = bfs(&g, 0, &FaultSet::empty());
        let mut scratch = SubtreeScratch::with_capacity(g.n());
        let mut out = Vec::new();
        for root in g.vertices() {
            scratch.collect_subtree(&g, root, |v| tree.parent(v), &mut out);
            // Ground truth: x is in root's subtree iff walking x's
            // parent chain reaches root.
            for x in g.vertices() {
                let mut cur = Some(x);
                let mut hit = false;
                while let Some(c) = cur {
                    if c == root {
                        hit = true;
                        break;
                    }
                    cur = tree.parent(c).map(|(p, _)| p);
                }
                assert_eq!(out.contains(&x), hit, "root {root}, x {x}");
                assert_eq!(scratch.contains(x), hit);
            }
        }
    }

    #[test]
    fn scratch_grows_and_reuses() {
        let mut scratch = SubtreeScratch::new();
        let mut out = Vec::new();
        let small = generators::path_graph(3);
        let t_small = bfs(&small, 0, &FaultSet::empty());
        scratch.collect_subtree(&small, 1, |v| t_small.parent(v), &mut out);
        assert_eq!(out, vec![1, 2]);
        let big = generators::grid(4, 4);
        let t_big = bfs(&big, 0, &FaultSet::empty());
        scratch.collect_subtree(&big, 0, |v| t_big.parent(v), &mut out);
        assert_eq!(out.len(), big.n());
    }
}
