//! The [`PathCost`] abstraction: totally ordered costs accumulated along paths.
//!
//! The exact-weight Dijkstra in `rsp-graph` is generic over the cost type so
//! that the same shortest-path engine serves all three tiebreaking weight
//! constructions of the paper:
//!
//! * Theorem 20 (random grid) and Corollary 22 (isolation lemma) scale their
//!   rational weights to integers that fit in [`u128`];
//! * Theorem 23 (deterministic geometric) needs `O(|E|)`-bit integers, i.e.
//!   [`crate::BigInt`].

use crate::BigInt;

/// Which priority-queue layout the scratch-based Dijkstra in `rsp-graph`
/// uses for a given cost type.
///
/// This is the *heap policy* of a [`PathCost`] implementation, selected at
/// compile time through [`PathCost::HEAP`]. Both layouts produce
/// byte-identical search results — same trees, costs, settle order, and tie
/// flags — they differ only in constant factors:
///
/// * [`HeapKind::InlineKey`] — a flat lazy binary heap whose entries are
///   `(cost, vertex)` pairs stored inline. No per-vertex heap-position
///   bookkeeping, no indirection through the cost array on comparisons;
///   improved keys are pushed as fresh entries and stale ones are skipped
///   at pop. The right choice when cloning a cost is a register copy
///   (`u32`/`u64`/`u128`): the decrease-key machinery of the indexed heap
///   costs more than the duplicate entries it avoids.
/// * [`HeapKind::Indexed`] — an indexed 4-ary heap with decrease-key: the
///   heap stores vertex ids only and compares through the scratch's cost
///   array, so each exact cost is stored exactly once per vertex and never
///   cloned into the heap. The right choice for heavyweight costs
///   ([`crate::BigInt`]), where one avoided clone pays for all the position
///   bookkeeping.
///
/// The policy also doubles as the *clone-cost signal* for optimizations
/// that trade clones for recomputation (the batch engine's checkpoint
/// guard skips state snapshots for `Indexed`-policy costs on small graphs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeapKind {
    /// Flat lazy heap of `(cost, vertex)` entries; cheap-to-clone costs.
    InlineKey,
    /// Indexed decrease-key heap of vertex ids; heavyweight costs.
    Indexed,
}

/// A totally ordered cost that can be accumulated along a path.
///
/// Implementors must form a *commutative monoid* under [`PathCost::plus`]
/// with identity [`PathCost::zero`], and the order must be translation
/// invariant (`a < b` implies `a+c < b+c`) — both hold trivially for the
/// provided integer implementations. Dijkstra additionally requires edge
/// costs to be non-negative, which the tiebreaking constructions guarantee
/// by scaling (each perturbed weight `1 + r(u,v)` is strictly positive since
/// `|r| < 1/(2n)`).
///
/// # Examples
///
/// ```
/// use rsp_arith::PathCost;
///
/// let total = u128::zero().plus(&10).plus(&32);
/// assert_eq!(total, 42);
/// ```
pub trait PathCost: Clone + Ord + std::fmt::Debug {
    /// The heap policy the scratch-based Dijkstra uses for this cost type
    /// (see [`HeapKind`] for the trade-off).
    ///
    /// The default is the always-safe [`HeapKind::Indexed`]; implementations
    /// whose `Clone` is a register copy should override to
    /// [`HeapKind::InlineKey`]. Either choice yields identical search
    /// results — the property suite in `crates/graph/tests/` pins the two
    /// engines against each other — so this is purely a performance knob.
    const HEAP: HeapKind = HeapKind::Indexed;

    /// The identity cost (an empty path).
    fn zero() -> Self;

    /// Returns the cost extended by one edge.
    ///
    /// # Panics
    ///
    /// Native integer implementations panic on overflow; callers size their
    /// weight scales so that the longest simple path cannot overflow.
    fn plus(&self, edge: &Self) -> Self;

    /// Writes `self + edge` into `out`, reusing `out`'s existing storage
    /// where possible.
    ///
    /// This is the relaxation hot path of the scratch-based Dijkstra in
    /// `rsp-graph`: with arbitrary-precision costs ([`crate::BigInt`]) the
    /// override reuses `out`'s limb buffer instead of allocating a fresh
    /// integer per relaxed edge. The default simply assigns `self.plus(edge)`
    /// — correct for any implementation, optimal for `Copy` integers.
    ///
    /// # Panics
    ///
    /// Same overflow behavior as [`PathCost::plus`].
    fn add_into(&self, edge: &Self, out: &mut Self) {
        *out = self.plus(edge);
    }

    /// Resets `self` to [`PathCost::zero`] in place, keeping its storage.
    fn set_zero(&mut self) {
        *self = Self::zero();
    }
}

impl PathCost for u64 {
    const HEAP: HeapKind = HeapKind::InlineKey;

    fn zero() -> Self {
        0
    }

    fn plus(&self, edge: &Self) -> Self {
        self.checked_add(*edge).expect("u64 path cost overflow")
    }
}

impl PathCost for u128 {
    const HEAP: HeapKind = HeapKind::InlineKey;

    fn zero() -> Self {
        0
    }

    fn plus(&self, edge: &Self) -> Self {
        self.checked_add(*edge).expect("u128 path cost overflow")
    }
}

impl PathCost for u32 {
    const HEAP: HeapKind = HeapKind::InlineKey;

    fn zero() -> Self {
        0
    }

    fn plus(&self, edge: &Self) -> Self {
        self.checked_add(*edge).expect("u32 path cost overflow")
    }
}

impl PathCost for BigInt {
    // A BigInt clone allocates; keep costs out of the heap entirely.
    const HEAP: HeapKind = HeapKind::Indexed;

    fn zero() -> Self {
        BigInt::zero()
    }

    fn plus(&self, edge: &Self) -> Self {
        self + edge
    }

    fn add_into(&self, edge: &Self, out: &mut Self) {
        BigInt::sum_into(self, edge, out);
    }

    fn set_zero(&mut self) {
        self.clear_to_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u128_monoid() {
        assert_eq!(u128::zero().plus(&5).plus(&7), 12);
        assert_eq!(u128::zero().plus(&0), 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn u64_overflow_panics() {
        let _ = u64::MAX.plus(&1);
    }

    #[test]
    fn bigint_monoid() {
        let a = BigInt::pow2(100);
        let b = BigInt::pow2(100);
        assert_eq!(a.plus(&b), BigInt::pow2(101));
        assert_eq!(BigInt::zero().plus(&BigInt::one()), BigInt::one());
    }

    #[test]
    fn add_into_matches_plus_for_integers() {
        let mut out = 0u128;
        7u128.add_into(&5, &mut out);
        assert_eq!(out, 12);
        let mut out = 0u64;
        u64::zero().add_into(&9, &mut out);
        assert_eq!(out, 9);
    }

    #[test]
    fn add_into_matches_plus_for_bigint() {
        let a = BigInt::pow2(130);
        let b = BigInt::pow2(130);
        // Seed `out` with unrelated storage: the in-place path must fully
        // overwrite it.
        let mut out = BigInt::pow2(5);
        a.add_into(&b, &mut out);
        assert_eq!(out, a.plus(&b));
        assert_eq!(out, BigInt::pow2(131));
    }

    #[test]
    fn set_zero_resets_in_place() {
        let mut x = BigInt::pow2(200);
        x.set_zero();
        assert_eq!(x, BigInt::zero());
        let mut y = 42u64;
        y.set_zero();
        assert_eq!(y, 0);
    }

    #[test]
    fn heap_policies_match_clone_cost() {
        // Register-copy costs ride the flat inline-key heap; allocating
        // costs keep the indexed decrease-key heap.
        assert_eq!(u32::HEAP, HeapKind::InlineKey);
        assert_eq!(u64::HEAP, HeapKind::InlineKey);
        assert_eq!(u128::HEAP, HeapKind::InlineKey);
        assert_eq!(BigInt::HEAP, HeapKind::Indexed);

        // The trait default stays the always-safe indexed policy.
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
        struct Plain(u8);
        impl PathCost for Plain {
            fn zero() -> Self {
                Plain(0)
            }
            fn plus(&self, e: &Self) -> Self {
                Plain(self.0 + e.0)
            }
        }
        assert_eq!(Plain::HEAP, HeapKind::Indexed);
    }

    #[test]
    fn order_translation_invariance_spot_check() {
        let a = 3u128;
        let b = 9u128;
        let c = 1u128 << 100;
        assert!(a < b && a.plus(&c) < b.plus(&c));
    }
}
